"""Coordinator + worker fabric: dispatch, retry, requeue, dedup, fallback.

Everything here runs in-process (one event loop, real sockets on
127.0.0.1) so death and fault timing can be orchestrated deterministically;
the subprocess SIGKILL campaign lives in ``test_chaos.py``.  The payoff
test is the differential sweep: for **every registry family**, a service
dispatching to two workers behind a drop/duplicate/delay channel must
produce responses bit-identical to the direct pipeline, with the store
holding exactly one row per unique request.
"""

from __future__ import annotations

import asyncio
import contextlib

import pytest

from repro.distributed.events import ChannelConfig
from repro.fabric import FabricCoordinator, FabricUnavailableError, run_worker
from repro.parallel import spawn_seeds
from repro.service import DiagnosisRequest, DiagnosisService, ResultStore
from repro.service.executor import run_direct
from tests.conftest import TINY_PARAMS

#: Short but unhurried timings: lease retries engage fast without turning a
#: loaded CI machine's scheduling hiccups into spurious worker deaths.
FAST = dict(heartbeat_interval=0.2, lease_timeout=1.0,
            backoff_base=0.01, backoff_cap=0.05)


@contextlib.asynccontextmanager
async def fabric(worker_configs, *, service_kwargs=None, **coord_kwargs):
    """A running coordinator + workers + service, torn down afterwards.

    ``worker_configs`` maps worker id -> ChannelConfig | None.  Yields
    ``(coordinator, service, workers)`` where ``workers`` maps id ->
    ``(task, stop_event)`` so tests can kill or stop individuals.
    """
    merged = {**FAST, **coord_kwargs}
    coordinator = FabricCoordinator(port=0, **merged)
    await coordinator.start()
    service = DiagnosisService(
        remote=coordinator, batch_delay=0.005, **(service_kwargs or {})
    )
    workers: dict[str, tuple[asyncio.Task, asyncio.Event]] = {}
    try:
        for worker_id, config in worker_configs.items():
            workers[worker_id] = await start_worker(
                coordinator, worker_id, config
            )
        yield coordinator, service, workers
    finally:
        for task, stop in workers.values():
            stop.set()
        await asyncio.gather(
            *(task for task, _ in workers.values()), return_exceptions=True
        )
        await service.close()
        await coordinator.close()


async def start_worker(coordinator, worker_id, config=None, *,
                       delay_unit=0.005):
    """Start one in-process worker and wait for its welcome handshake."""
    ready = asyncio.Event()
    stop = asyncio.Event()
    task = asyncio.create_task(run_worker(
        "127.0.0.1", coordinator.port,
        worker_id=worker_id,
        fault_config=config,
        delay_unit=delay_unit,
        ready=lambda _worker: ready.set(),
        stop=stop,
    ))
    await asyncio.wait_for(ready.wait(), 10)
    return task, stop


def _requests(family="hypercube", count=4, base_seed=0):
    params = TINY_PARAMS[family]
    return [
        DiagnosisRequest.seeded(family, params, seed=seed)
        for seed in spawn_seeds(base_seed, count)
    ]


def _assert_matches_direct(requests, responses):
    for request, response in zip(requests, responses):
        direct = run_direct(request)
        assert (
            response.faulty,
            response.healthy_root,
            response.lookups,
            response.syndrome_digest,
            response.error,
        ) == (
            direct.faulty,
            direct.healthy_root,
            direct.lookups,
            direct.syndrome_digest,
            direct.error,
        ), f"fabric response diverged on {request.describe()}"


class TestDispatch:
    def test_single_worker_serves_batches(self):
        async def scenario():
            async with fabric({"w1": None}) as (coordinator, service, _):
                requests = _requests(count=6)
                responses = await service.submit_many(requests)
                _assert_matches_direct(requests, responses)
                snapshot = service.stats()
                row = snapshot["workers"]["w1"]
                assert row["dispatched"] >= 1
                assert row["completed"] == row["dispatched"]
                assert row["requeued"] == 0
                assert snapshot["fabric"]["workers_live"] == 1
                assert snapshot["fabric"]["outstanding_leases"] == 0

        asyncio.run(scenario())

    def test_round_robin_spreads_leases_across_workers(self):
        async def scenario():
            async with fabric({"w1": None, "w2": None}) as (
                coordinator, service, _,
            ):
                # Distinct topologies -> distinct batches -> both workers
                # must see work under round-robin dispatch.
                requests = []
                for family in ("hypercube", "star", "pancake", "mobius_cube"):
                    requests.extend(_requests(family, count=2))
                responses = await service.submit_many(requests)
                _assert_matches_direct(requests, responses)
                workers = service.stats()["workers"]
                assert workers["w1"]["dispatched"] >= 1
                assert workers["w2"]["dispatched"] >= 1

        asyncio.run(scenario())

    def test_no_workers_falls_back_to_local_execution(self):
        async def scenario():
            coordinator = FabricCoordinator(port=0, **{**FAST, "lease_timeout": 0.1})
            await coordinator.start()
            service = DiagnosisService(remote=coordinator, batch_delay=0.005)
            try:
                # has_workers() is False -> the service never even waits on
                # the fabric; the local path answers.
                requests = _requests(count=3)
                responses = await service.submit_many(requests)
                _assert_matches_direct(requests, responses)
                assert service.stats()["workers"] == {}
            finally:
                await service.close()
                await coordinator.close()

        asyncio.run(scenario())

    def test_execute_without_workers_raises_unavailable(self):
        async def scenario():
            coordinator = FabricCoordinator(port=0, **{**FAST, "lease_timeout": 0.1})
            await coordinator.start()
            try:
                with pytest.raises(FabricUnavailableError):
                    await coordinator.execute("t", _requests(count=1))
            finally:
                await coordinator.close()

        asyncio.run(scenario())

    def test_closed_coordinator_raises_unavailable(self):
        async def scenario():
            coordinator = FabricCoordinator(port=0, **FAST)
            await coordinator.start()
            await coordinator.close()
            with pytest.raises(FabricUnavailableError):
                await coordinator.execute("t", _requests(count=1))

        asyncio.run(scenario())


class TestFailureRecovery:
    def test_worker_death_mid_lease_requeues_to_survivor(self):
        async def scenario():
            # w1 delays every result by ~1s (latency fixed:201 at 5ms/round);
            # leases land on it first, then it dies mid-flight.
            slow = ChannelConfig(latency="fixed:201", seed=1)
            async with fabric(
                {"w1": slow}, lease_timeout=5.0,
            ) as (coordinator, service, workers):
                requests = _requests(count=4)
                submission = asyncio.create_task(
                    service.submit_many(requests)
                )
                # Wait until the lease is actually in flight on w1.
                deadline = asyncio.get_running_loop().time() + 5
                while not coordinator.stats()["outstanding_leases"]:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                _, w2_stop = await start_worker(coordinator, "w2")
                # SIGKILL-equivalent for an in-process worker: cancel the
                # task; its socket closes abruptly and the coordinator sees
                # EOF with the lease unanswered.
                task, _ = workers["w1"]
                task.cancel()
                responses = await asyncio.wait_for(submission, 30)
                _assert_matches_direct(requests, responses)
                rows = service.stats()["workers"]
                assert rows["w1"]["requeued"] >= 1
                assert rows["w1"]["evictions"] == 1
                assert rows["w2"]["completed"] >= 1
                assert not coordinator.registry.is_live("w1")
                w2_stop.set()

        asyncio.run(scenario())

    def test_heartbeat_silence_sweeps_the_worker_dead(self):
        async def scenario():
            async with fabric({}) as (coordinator, service, _):
                # A worker that says hello and then goes silent (no
                # heartbeats): the sweeper must declare it dead.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", coordinator.port
                )
                from repro.fabric import read_frame, write_frame

                await write_frame(writer, {
                    "kind": "hello", "worker": "mute", "pid": 0,
                    "protocol": 1,
                })
                welcome = await read_frame(reader)
                assert welcome["kind"] == "welcome"
                deadline = asyncio.get_running_loop().time() + 10
                while coordinator.registry.is_live("mute"):
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                assert service.stats()["workers"]["mute"]["evictions"] == 1
                writer.close()

        asyncio.run(scenario())

    def test_lost_leases_are_retried_until_served(self):
        async def scenario():
            # Half the data-plane frames vanish; the coordinator's lease
            # timeout plus retry must still land every batch.
            lossy = ChannelConfig(loss_rate=0.5, seed=5)
            async with fabric(
                {"w1": lossy}, lease_timeout=0.3,
            ) as (coordinator, service, _):
                requests = _requests(count=6)
                responses = await asyncio.wait_for(
                    service.submit_many(requests), 60
                )
                _assert_matches_direct(requests, responses)

        asyncio.run(scenario())

    def test_duplicated_frames_are_deduped(self):
        async def scenario():
            # Duplicate-heavy channel: leases execute twice, results arrive
            # twice — exactly one completion must win per lease.
            noisy = ChannelConfig(duplicate_rate=0.9, seed=3)
            async with fabric({"w1": noisy}) as (coordinator, service, _):
                total = 0
                for family in ("hypercube", "star", "pancake"):
                    requests = _requests(family, count=3)
                    total += len(requests)
                    responses = await service.submit_many(requests)
                    _assert_matches_direct(requests, responses)
                stats = coordinator.stats()
                assert stats["duplicate_completions"] >= 1
                snapshot = service.stats()
                assert snapshot["requests"] == total
                assert snapshot["computed"] == total

        asyncio.run(scenario())

    def test_worker_rejoin_bumps_generation_and_serves_again(self):
        async def scenario():
            async with fabric({"w1": None}) as (coordinator, service, workers):
                first = _requests(count=2)
                _assert_matches_direct(first, await service.submit_many(first))
                assert coordinator.registry.generation("w1") == 1
                task, stop = workers["w1"]
                stop.set()
                await task
                deadline = asyncio.get_running_loop().time() + 5
                while coordinator.has_workers():
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                workers["w1"] = await start_worker(coordinator, "w1")
                assert coordinator.registry.generation("w1") == 2
                second = _requests(count=2, base_seed=99)
                _assert_matches_direct(
                    second, await service.submit_many(second)
                )
                assert service.stats()["workers"]["w1"]["completed"] >= 2

        asyncio.run(scenario())

    def test_unavailable_fabric_falls_back_midstream(self):
        async def scenario():
            # The lone worker dies with nothing to replace it: the service
            # must fall back to local execution, losing no requests.
            async with fabric(
                {"w1": None}, lease_timeout=0.2, max_attempts=2,
            ) as (coordinator, service, workers):
                warm = _requests(count=2)
                _assert_matches_direct(warm, await service.submit_many(warm))
                task, _ = workers["w1"]
                task.cancel()
                deadline = asyncio.get_running_loop().time() + 5
                while coordinator.has_workers():
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                cold = _requests(count=3, base_seed=7)
                responses = await asyncio.wait_for(
                    service.submit_many(cold), 30
                )
                _assert_matches_direct(cold, responses)

        asyncio.run(scenario())


class TestFaultyChannelDifferential:
    def test_lossy_dup_delay_fabric_matches_direct_on_every_family(
        self, tiny_network
    ):
        """The acceptance pin: two workers behind a drop/duplicate/delay
        channel, responses bit-identical to the direct pipeline, and the
        store holding exactly one row per unique request."""
        family = tiny_network.family
        params = TINY_PARAMS[family]
        base = sum(ord(c) for c in family)
        requests = [
            DiagnosisRequest.seeded(
                family, params, placement=placement, seed=seed
            )
            for seed in spawn_seeds(base, 2)
            for placement in ("random", "clustered")
        ]
        requests += requests[:2]  # repeats exercise store/coalescing too
        hostile = ChannelConfig(
            latency="fixed:3", loss_rate=0.25, duplicate_rate=0.25,
            seed=base % 97,
        )

        async def scenario():
            store = ResultStore()
            async with fabric(
                {"w1": hostile, "w2": None},
                lease_timeout=0.5,
                service_kwargs={"store": store},
            ) as (coordinator, service, _):
                responses = await asyncio.wait_for(
                    service.submit_many(requests), 120
                )
                _assert_matches_direct(requests, responses)
                # Zero lost, zero double-committed: one store row per
                # unique request, no matter how many times the channel
                # dropped, doubled or delayed the work.
                unique = len({r.key for r in requests})
                assert len(store) == unique
                assert store.request_count() == unique
                snapshot = service.stats()
                assert snapshot["requests"] == len(requests)
                # "errors" counts agreed DiagnosisError outcomes (the
                # differential above pinned them identical to direct) —
                # the fabric itself must not add any failures.
                assert snapshot["errors"] == sum(
                    1 for response in responses if not response.ok
                )
                assert snapshot["fabric"]["outstanding_leases"] == 0

        asyncio.run(scenario())


class TestFallbackEvidence:
    def test_fabric_decline_increments_fallback_counter(self):
        """Regression: a FabricUnavailableError used to fall through to the
        local path silently — a degraded fleet was invisible in /stats."""

        class DecliningRemote:
            def has_workers(self):
                return True

            async def execute(self, topology, requests):
                raise FabricUnavailableError("all retries spent")

            def stats(self):
                return {}

        async def scenario():
            service = DiagnosisService(
                remote=DecliningRemote(), batch_delay=0.005
            )
            try:
                requests = _requests(count=3)
                responses = await service.submit_many(requests)
                _assert_matches_direct(requests, responses)
                snapshot = service.stats()
                assert snapshot["fabric_fallbacks"] >= 1
            finally:
                await service.close()

        asyncio.run(scenario())

    def test_worker_error_report_leaves_counter_and_message(self):
        """Regression: a worker's terminal error frame was requeued with its
        message discarded, leaving no evidence of *why* the environment
        failed."""
        from types import SimpleNamespace

        async def scenario():
            coordinator = FabricCoordinator(port=0, **FAST)
            await coordinator.start()
            try:
                link = SimpleNamespace(worker_id="w1", inflight={"L1"})
                coordinator._handle_worker_error(link, {
                    "kind": "error",
                    "lease": "L1",
                    "worker": "w1",
                    "message": "RuntimeError: cannot build topology",
                })
                assert link.inflight == set()
                row = coordinator.metrics.worker("w1")
                assert row["errors"] == 1
                stats = coordinator.stats()
                assert stats["last_worker_errors"] == {
                    "w1": "RuntimeError: cannot build topology"
                }
            finally:
                await coordinator.close()

        asyncio.run(scenario())
