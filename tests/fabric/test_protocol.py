"""Fabric wire protocol: framing, fault injection, lease/result codecs."""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.distributed.events import ChannelConfig, LossModel
from repro.fabric import (
    DATA_PLANE_KINDS,
    MAX_FRAME_BYTES,
    FaultPolicy,
    FrameChannel,
    FrameError,
    read_frame,
    write_frame,
)
from repro.service import (
    DiagnosisRequest,
    decode_lease,
    decode_result,
    encode_lease,
    encode_result,
)
from repro.service.executor import run_batch_local, resolve_topology


async def _stream_pair():
    """A connected (client, server) pair of asyncio stream tuples."""
    accepted: asyncio.Future = asyncio.get_running_loop().create_future()

    async def on_connect(reader, writer):
        accepted.set_result((reader, writer))

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    client = await asyncio.open_connection("127.0.0.1", port)
    serverside = await accepted
    return client, serverside, server


def _run(coro):
    return asyncio.run(coro)


async def _close_all(client, serverside, server):
    for _, writer in (client, serverside):
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    server.close()
    await server.wait_closed()


class TestFraming:
    def test_round_trip(self):
        async def scenario():
            client, serverside, server = await _stream_pair()
            try:
                frame = {"kind": "hello", "worker": "w1", "n": 7}
                await write_frame(client[1], frame)
                received = await read_frame(serverside[0])
                assert received == frame
            finally:
                await _close_all(client, serverside, server)

        _run(scenario())

    def test_eof_returns_none(self):
        async def scenario():
            client, serverside, server = await _stream_pair()
            try:
                client[1].close()
                await client[1].wait_closed()
                assert await read_frame(serverside[0]) is None
            finally:
                serverside[1].close()
                server.close()
                await server.wait_closed()

        _run(scenario())

    def test_truncated_body_returns_none(self):
        async def scenario():
            client, serverside, server = await _stream_pair()
            try:
                # Header promises 100 bytes; only 3 arrive before EOF.
                client[1].write(struct.pack(">I", 100) + b"abc")
                await client[1].drain()
                client[1].close()
                await client[1].wait_closed()
                assert await read_frame(serverside[0]) is None
            finally:
                serverside[1].close()
                server.close()
                await server.wait_closed()

        _run(scenario())

    @pytest.mark.parametrize("body", [
        b"not json at all",
        json.dumps([1, 2, 3]).encode(),       # not an object
        json.dumps({"no": "kind"}).encode(),  # no 'kind'
        json.dumps({"kind": 5}).encode(),     # non-string 'kind'
    ])
    def test_malformed_bodies_raise_frame_error(self, body):
        async def scenario():
            client, serverside, server = await _stream_pair()
            try:
                client[1].write(struct.pack(">I", len(body)) + body)
                await client[1].drain()
                with pytest.raises(FrameError):
                    await read_frame(serverside[0])
            finally:
                await _close_all(client, serverside, server)

        _run(scenario())

    def test_oversize_length_prefix_rejected(self):
        async def scenario():
            client, serverside, server = await _stream_pair()
            try:
                client[1].write(struct.pack(">I", MAX_FRAME_BYTES + 1))
                await client[1].drain()
                with pytest.raises(FrameError):
                    await read_frame(serverside[0])
            finally:
                await _close_all(client, serverside, server)

        _run(scenario())


class TestFaultPolicy:
    def test_draw_sequence_matches_loss_model(self):
        """copies() replays the engine's canonical drop-then-duplicate draws."""
        config = ChannelConfig(loss_rate=0.4, duplicate_rate=0.4, seed=11)
        policy = FaultPolicy(config)
        reference = LossModel(config)
        expected = []
        for _ in range(64):
            if reference.dropped():
                expected.append(0)
            else:
                expected.append(2 if reference.duplicated() else 1)
        assert [policy.copies() for _ in range(64)] == expected

    def test_delay_from_latency_spec(self):
        fast = FaultPolicy(ChannelConfig(latency="fixed:1"), delay_unit=0.01)
        slow = FaultPolicy(ChannelConfig(latency="fixed:5"), delay_unit=0.01)
        assert fast.delay_seconds == 0.0
        assert slow.delay_seconds == pytest.approx(0.04)

    def test_negative_delay_unit_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(ChannelConfig(), delay_unit=-1.0)


class TestFrameChannel:
    def test_control_plane_is_never_faulted(self):
        """A policy that drops every data frame must not touch heartbeats."""
        async def scenario():
            client, serverside, server = await _stream_pair()
            try:
                policy = FaultPolicy(
                    ChannelConfig(loss_rate=0.99, seed=3)
                )
                channel = FrameChannel(*client, fault_policy=policy)
                for _ in range(20):
                    await channel.send({"kind": "heartbeat", "worker": "w"})
                for _ in range(20):
                    frame = await read_frame(serverside[0])
                    assert frame == {"kind": "heartbeat", "worker": "w"}
                assert channel.dropped_frames == 0
            finally:
                await _close_all(client, serverside, server)

        _run(scenario())

    def test_data_plane_drop_and_duplicate(self):
        async def scenario():
            client, serverside, server = await _stream_pair()
            try:
                channel = FrameChannel(*client, fault_policy=policy_sent)
                for i in range(40):
                    await channel.send({"kind": "result", "lease": i})
                client[1].close()
                received = []
                while True:
                    frame = await read_frame(serverside[0])
                    if frame is None:
                        break
                    received.append(frame["lease"])
                # Replay the same seeded draws to predict the exact stream.
                reference = FaultPolicy(config)
                expected = []
                for i in range(40):
                    expected.extend([i] * reference.copies())
                assert received == expected
                assert channel.dropped_frames == sum(
                    1 for i in range(40) if expected.count(i) == 0
                )
                assert channel.duplicated_frames == sum(
                    1 for i in range(40) if expected.count(i) == 2
                )
            finally:
                serverside[1].close()
                server.close()
                await server.wait_closed()

        config = ChannelConfig(loss_rate=0.3, duplicate_rate=0.3, seed=7)
        policy_sent = FaultPolicy(config)
        _run(scenario())


class TestLeaseCodecs:
    def _requests(self):
        return [
            DiagnosisRequest.seeded("hypercube", {"dimension": 5}, seed=s)
            for s in range(3)
        ]

    def test_lease_round_trip(self):
        requests = self._requests()
        frame = encode_lease(17, requests)
        assert frame["kind"] == "lease"
        lease_id, decoded = decode_lease(json.loads(json.dumps(frame)))
        assert lease_id == 17
        assert decoded == requests

    def test_result_round_trip_carries_stats(self):
        requests = self._requests()
        network, csr = resolve_topology("hypercube", {"dimension": 5})
        responses, stats = run_batch_local(network, csr, requests)
        frame = encode_result(23, responses, stats)
        assert frame["kind"] == "result"
        lease_id, decoded, decoded_stats = decode_result(
            json.loads(json.dumps(frame))
        )
        assert lease_id == 23
        assert decoded_stats == {
            name: stats[name]
            for name in ("compiles", "pair_builds", "kernel_width")
        }
        for sent, received in zip(responses, decoded):
            assert received.faulty == sent.faulty
            assert received.healthy_root == sent.healthy_root
            assert received.lookups == sent.lookups
            assert received.syndrome_digest == sent.syndrome_digest
            assert received.error == sent.error

    @pytest.mark.parametrize("frame, message", [
        ({"kind": "lease"}, "lease id must be an integer"),
        ({"kind": "lease", "lease": "x", "requests": []},
         "lease id must be an integer"),
        ({"kind": "lease", "lease": 1, "requests": []},
         "non-empty 'requests' list"),
        ({"kind": "lease", "lease": 1, "requests": [{"params": {}}]},
         r"lease requests\[0\]"),
        ({"kind": "result", "lease": 1, "responses": [], "stats": {}},
         "result stats"),
        ({"kind": "result", "lease": 1, "responses": [{}],
          "stats": {"compiles": 0, "pair_builds": 0, "kernel_width": 0}},
         r"result responses\[0\]"),
        ({"kind": "welcome"}, "not a result frame"),
    ])
    def test_malformed_frames_positional_errors(self, frame, message):
        decoder = decode_lease if frame["kind"] == "lease" else decode_result
        with pytest.raises(ValueError, match=message):
            decoder(frame)

    def test_data_plane_kinds_cover_the_codecs(self):
        assert encode_lease(1, self._requests())["kind"] in DATA_PLANE_KINDS
        network, csr = resolve_topology("hypercube", {"dimension": 5})
        responses, stats = run_batch_local(network, csr, self._requests()[:1])
        assert encode_result(1, responses, stats)["kind"] in DATA_PLANE_KINDS
