"""WorkerRegistry: the register → heartbeat → miss → dead → rejoin machine.

The property suite drives random event sequences (register, heartbeat,
clock advance, connection death, sweep) through :class:`WorkerRegistry` and
a dict-based reference model in lockstep, in the style of the fair-queue
suite: liveness, generations and eviction counts must agree after every
event, and the liveness laws the coordinator builds on are pinned directly:

* silence is only fatal *beyond* ``max_missed`` heartbeat intervals —
  exactly at the deadline is still alive;
* a heartbeat never revives a dead worker (its leases were already
  requeued; it must re-register);
* re-registration always bumps the generation, alive or dead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fabric import WorkerRegistry


class TestBasics:
    def test_register_and_live(self):
        registry = WorkerRegistry(heartbeat_interval=1.0)
        info = registry.register("w1", now=0.0)
        assert info.generation == 1
        assert registry.live() == ["w1"]
        assert registry.is_live("w1")
        assert registry.generation("w1") == 1
        assert registry.generation("unknown") == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WorkerRegistry(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            WorkerRegistry(heartbeat_interval=1.0, max_missed=0)

    def test_exactly_deadline_silence_is_still_alive(self):
        registry = WorkerRegistry(heartbeat_interval=1.0, max_missed=3)
        registry.register("w1", now=0.0)
        assert registry.sweep(now=3.0) == []  # == deadline: alive
        assert registry.sweep(now=3.0001) == ["w1"]
        assert not registry.is_live("w1")
        assert registry.evictions == 1

    def test_heartbeat_extends_the_lease(self):
        registry = WorkerRegistry(heartbeat_interval=1.0, max_missed=3)
        registry.register("w1", now=0.0)
        assert registry.heartbeat("w1", now=2.5)
        assert registry.sweep(now=5.0) == []
        assert registry.sweep(now=6.0) == ["w1"]

    def test_heartbeat_from_unknown_or_dead_is_refused(self):
        registry = WorkerRegistry(heartbeat_interval=1.0)
        assert not registry.heartbeat("ghost", now=0.0)
        registry.register("w1", now=0.0)
        registry.mark_dead("w1")
        assert not registry.heartbeat("w1", now=0.1)
        assert not registry.is_live("w1")

    def test_mark_dead_is_idempotent(self):
        registry = WorkerRegistry(heartbeat_interval=1.0)
        registry.register("w1", now=0.0)
        assert registry.mark_dead("w1")
        assert not registry.mark_dead("w1")
        assert not registry.mark_dead("ghost")
        assert registry.evictions == 1

    def test_rejoin_bumps_generation_and_revives(self):
        registry = WorkerRegistry(heartbeat_interval=1.0)
        registry.register("w1", now=0.0)
        registry.mark_dead("w1")
        info = registry.register("w1", now=5.0)
        assert info.generation == 2
        assert registry.is_live("w1")
        # A dead spell does not carry over: silence counts from the rejoin.
        assert registry.sweep(now=7.0) == []

    def test_reregistration_of_a_live_worker_bumps_generation(self):
        registry = WorkerRegistry(heartbeat_interval=1.0)
        registry.register("w1", now=0.0)
        info = registry.register("w1", now=1.0)
        assert info.generation == 2
        assert registry.live() == ["w1"]

    def test_live_order_is_first_registration(self):
        registry = WorkerRegistry(heartbeat_interval=1.0)
        for name in ("b", "a", "c"):
            registry.register(name, now=0.0)
        registry.mark_dead("a")
        assert registry.live() == ["b", "c"]
        registry.register("a", now=1.0)  # rejoin keeps the original slot
        assert registry.live() == ["b", "a", "c"]

    def test_stats_shape(self):
        registry = WorkerRegistry(heartbeat_interval=0.5, max_missed=2)
        registry.register("w1", now=0.0)
        registry.register("w2", now=0.0)
        registry.mark_dead("w2")
        stats = registry.stats()
        assert stats["known"] == 2
        assert stats["live"] == 1
        assert stats["evictions"] == 1
        assert sorted(stats["workers"]) == ["w1", "w2"]
        assert stats["workers"]["w1"] == {
            "generation": 1, "alive": True, "last_heartbeat": 0.0,
        }
        assert stats["workers"]["w2"]["alive"] is False


class ReferenceRegistry:
    """Independent liveness model: plain dicts, recomputed from scratch."""

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self.last_seen: dict[str, float] = {}
        self.alive: dict[str, bool] = {}
        self.generation: dict[str, int] = {}
        self.order: list[str] = []
        self.evictions = 0

    def register(self, worker, now):
        if worker not in self.order:
            self.order.append(worker)
        self.generation[worker] = self.generation.get(worker, 0) + 1
        self.alive[worker] = True
        self.last_seen[worker] = now

    def heartbeat(self, worker, now):
        if not self.alive.get(worker, False):
            return False
        self.last_seen[worker] = now
        return True

    def mark_dead(self, worker):
        if not self.alive.get(worker, False):
            return False
        self.alive[worker] = False
        self.evictions += 1
        return True

    def sweep(self, now):
        dead = [
            worker for worker in self.order
            if self.alive[worker] and now - self.last_seen[worker] > self.deadline
        ]
        for worker in dead:
            self.mark_dead(worker)
        return dead

    def live(self):
        return [w for w in self.order if self.alive[w]]


@pytest.mark.parametrize("seed", range(8))
def test_random_event_sequences_match_reference(seed):
    rng = np.random.default_rng(seed)
    interval = float(rng.uniform(0.5, 2.0))
    max_missed = int(rng.integers(1, 5))
    real = WorkerRegistry(heartbeat_interval=interval, max_missed=max_missed)
    model = ReferenceRegistry(deadline=interval * max_missed)
    workers = [f"w{i}" for i in range(int(rng.integers(1, 6)))]
    clock = 0.0
    for _ in range(500):
        event = rng.random()
        if event < 0.25:
            worker = workers[int(rng.integers(len(workers)))]
            info = real.register(worker, clock)
            model.register(worker, clock)
            assert info.generation == model.generation[worker]
        elif event < 0.55:
            worker = workers[int(rng.integers(len(workers)))]
            assert (real.heartbeat(worker, clock)
                    == model.heartbeat(worker, clock))
        elif event < 0.70:
            worker = workers[int(rng.integers(len(workers)))]
            assert real.mark_dead(worker) == model.mark_dead(worker)
        elif event < 0.85:
            # Advance the virtual clock — sometimes past the deadline.
            clock += float(rng.uniform(0.0, interval * (max_missed + 1)))
        else:
            assert real.sweep(clock) == model.sweep(clock)
        # Invariants after every event.
        assert real.live() == model.live()
        assert real.evictions == model.evictions
        for worker in workers:
            assert real.is_live(worker) == model.alive.get(worker, False)
            assert real.generation(worker) == model.generation.get(worker, 0)
    stats = real.stats()
    assert stats["live"] == len(model.live())
    assert stats["evictions"] == model.evictions
