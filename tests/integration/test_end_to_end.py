"""Integration tests: full pipelines across modules.

These tests exercise the complete flow the examples and benchmarks rely on —
topology → fault injection → syndrome generation → diagnosis → verification —
and cross-validate the general algorithm against the baselines and against the
exhaustive ground truth on instances small enough to afford it.
"""

from __future__ import annotations

import pytest

from repro import (
    GeneralDiagnoser,
    certificate_node_budget,
    diagnose,
    generate_syndrome,
    random_faults,
    scenario_suite,
    syndrome_table_size,
)
from repro.analysis import set_builder_lookup_bound
from repro.baselines import ExhaustiveDiagnoser, ExtendedStarDiagnoser, YangCycleDiagnoser
from repro.core.verification import is_consistent_fault_set
from repro.distributed import DistributedSetBuilder
from repro.networks import Hypercube, KAryNCube, PancakeGraph, StarGraph

from ..conftest import ALL_FAMILIES, cached_network


class TestScenarioSuiteAcrossZoo:
    """Every scenario of the standard battery is diagnosed exactly, zoo-wide."""

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_full_scenario_battery(self, family):
        network = cached_network(family, "small")
        for scenario in scenario_suite(network, seed=1):
            syndrome = generate_syndrome(network, scenario.faults, seed=1)
            result = diagnose(network, syndrome)
            assert result.faulty == scenario.faults, (family, scenario.name)


class TestCrossValidation:
    def test_three_algorithms_and_ground_truth_on_q6(self):
        cube = Hypercube(6)
        # δ of Q_6 is formally defined from n ≥ 5; use 4 faults and an
        # explicit bound so the exhaustive search stays affordable.
        faults = random_faults(cube, 4, seed=9)
        syndrome = generate_syndrome(cube, faults, seed=9)
        stewart = GeneralDiagnoser(cube, diagnosability=6).diagnose(syndrome).faulty
        yang = YangCycleDiagnoser(cube).diagnose(
            generate_syndrome(cube, faults, seed=9)).faulty
        extended = ExtendedStarDiagnoser(cube).diagnose(
            generate_syndrome(cube, faults, seed=9)).faulty
        exhaustive = ExhaustiveDiagnoser(cube, max_faults=4).diagnose(
            generate_syndrome(cube, faults, seed=9))
        assert stewart == yang == extended == exhaustive == faults

    @pytest.mark.parametrize("seed", range(4))
    def test_stewart_vs_exhaustive_on_pancake(self, seed):
        net = PancakeGraph(5)
        faults = random_faults(net, 3, seed=seed)
        syndrome = generate_syndrome(net, faults, seed=seed)
        stewart = diagnose(net, syndrome).faulty
        exhaustive = ExhaustiveDiagnoser(net, max_faults=3).diagnose(
            generate_syndrome(net, faults, seed=seed))
        assert stewart == exhaustive == faults

    def test_diagnosis_output_is_consistent_fault_set(self):
        net = KAryNCube(3, 6)
        faults = random_faults(net, 6, seed=2)
        syndrome = generate_syndrome(net, faults, seed=2)
        result = diagnose(net, syndrome)
        assert is_consistent_fault_set(net, syndrome, result.faulty)


class TestCostClaims:
    def test_lookups_well_below_full_table_across_zoo(self):
        """Section 6: the algorithm consults far fewer entries than the full table."""
        for family in ("hypercube", "crossed_cube", "star", "kary_ncube"):
            network = cached_network(family, "small")
            delta = network.diagnosability()
            faults = random_faults(network, delta, seed=4)
            syndrome = generate_syndrome(network, faults, seed=4)
            result = diagnose(network, syndrome)
            assert result.lookups < syndrome_table_size(network)

    def test_final_run_lookups_obey_section6_bound(self):
        cube = Hypercube(9)
        faults = random_faults(cube, 9, seed=5)
        syndrome = generate_syndrome(cube, faults, seed=5)
        result = diagnose(cube, syndrome)
        # The driver performs at most δ+1 probes (each bounded by the class
        # work) plus the final run; the total stays within a small multiple of
        # the Section 6 single-run bound.
        single_run_bound = set_builder_lookup_bound(cube.max_degree, len(result.healthy_nodes))
        assert result.lookups <= 3 * single_run_bound

    def test_certificate_budget_formula_is_sufficient(self):
        cube = Hypercube(8)
        budget = certificate_node_budget(8, 8)
        assert budget == 66
        faults = random_faults(cube, 8, seed=7)
        syndrome = generate_syndrome(cube, faults, seed=7)
        healthy_root = next(v for v in range(cube.num_nodes) if v not in faults)
        from repro.core.set_builder import set_builder

        result = set_builder(cube, syndrome, healthy_root, max_nodes=budget,
                             stop_on_certificate=True)
        assert result.all_healthy


class TestDistributedPipeline:
    def test_distributed_run_after_centralised_root_search(self):
        cube = Hypercube(8)
        faults = random_faults(cube, 8, seed=11)
        syndrome = generate_syndrome(cube, faults, seed=11)
        central = diagnose(cube, syndrome)
        stats = DistributedSetBuilder(cube).run(
            generate_syndrome(cube, faults, seed=11), central.healthy_root)
        assert stats.faults_found == len(faults)
        assert stats.tree_size == len(central.healthy_nodes)


class TestSpanningTreeByProduct:
    def test_tree_usable_for_broadcast(self):
        """Section 6: the healthy spanning tree is a usable by-product."""
        import networkx as nx

        net = StarGraph(6)
        faults = random_faults(net, 5, seed=3)
        syndrome = generate_syndrome(net, faults, seed=3)
        result = diagnose(net, syndrome)
        tree = nx.Graph(list((p, c) for c, p in result.tree_parent.items()))
        tree.add_nodes_from(result.healthy_nodes)
        assert nx.is_tree(tree)
        assert set(tree.nodes()) == set(result.healthy_nodes)
