"""Tests for the network base classes (encoding, partitions, explicit graphs)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks import ExplicitNetwork, Hypercube, KAryNCube, StarGraph
from repro.networks.base import PartitionClass, PartitionScheme


# ----------------------------------------------------------------- ExplicitNetwork
class TestExplicitNetwork:
    def test_round_trip_from_networkx(self):
        graph = nx.petersen_graph()
        net = ExplicitNetwork.from_networkx(graph, diagnosability=2)
        assert net.num_nodes == 10
        assert net.num_edges() == 15
        assert sorted(net.neighbors(0)) == sorted(graph.neighbors(0))

    def test_rejects_asymmetric_adjacency(self):
        with pytest.raises(ValueError, match="not symmetric"):
            ExplicitNetwork([[1], []])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            ExplicitNetwork([[0, 1], [0]])

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(ValueError, match="out of range"):
            ExplicitNetwork([[5], [0]])

    def test_diagnosability_requires_value(self):
        net = ExplicitNetwork([[1], [0]])
        with pytest.raises(ValueError):
            net.diagnosability()
        assert ExplicitNetwork([[1], [0]], diagnosability=1).diagnosability() == 1

    def test_connectivity_computed_when_missing(self):
        net = ExplicitNetwork.from_networkx(nx.cycle_graph(6))
        assert net.connectivity() == 2

    def test_partition_is_singletons(self):
        net = ExplicitNetwork.from_networkx(nx.cycle_graph(6), diagnosability=2)
        scheme = net.partition_scheme()
        classes = list(scheme)
        assert len(classes) == 6
        assert all(cls.size == 1 for cls in classes)
        assert {cls.representative for cls in classes} == set(range(6))

    def test_len_and_repr(self):
        net = ExplicitNetwork.from_networkx(nx.cycle_graph(4))
        assert len(net) == 4
        assert "ExplicitNetwork" in repr(net)

    def test_edges_listed_once(self):
        net = ExplicitNetwork.from_networkx(nx.complete_graph(5))
        edges = list(net.edges())
        assert len(edges) == 10
        assert all(u < v for u, v in edges)

    def test_has_edge(self):
        net = ExplicitNetwork.from_networkx(nx.path_graph(3))
        assert net.has_edge(0, 1)
        assert not net.has_edge(0, 2)


# ------------------------------------------------------------- DimensionalNetwork
class TestDimensionalEncoding:
    def test_label_round_trip_binary(self):
        cube = Hypercube(6)
        for v in [0, 1, 5, 37, 63]:
            assert cube.node_index(cube.node_label(v)) == v

    def test_label_round_trip_kary(self):
        net = KAryNCube(3, 4)
        for v in [0, 1, 17, 42, 63]:
            assert net.node_index(net.node_label(v)) == v

    def test_label_most_significant_first(self):
        cube = Hypercube(4)
        assert cube.node_label(0b1010) == (1, 0, 1, 0)
        assert cube.node_index((1, 0, 1, 0)) == 0b1010

    def test_digit_accessor(self):
        net = KAryNCube(3, 5)
        label = net.node_label(117)
        for position in range(3):
            assert net.digit(117, position) == label[2 - position]

    def test_label_wrong_length_rejected(self):
        cube = Hypercube(4)
        with pytest.raises(ValueError, match="digits"):
            cube.node_index((1, 0, 1))

    def test_label_out_of_range_digit_rejected(self):
        cube = Hypercube(4)
        with pytest.raises(ValueError, match="out of range"):
            cube.node_index((2, 0, 0, 0))

    def test_dimension_and_radix_validation(self):
        with pytest.raises(ValueError):
            Hypercube(0)
        with pytest.raises(ValueError):
            KAryNCube(3, 2)


# ----------------------------------------------------------------- PartitionScheme
class TestPartitionScheme:
    def test_prefix_partition_structure(self):
        cube = Hypercube(6)
        scheme = cube.partition_scheme()
        # δ = 6, so the smallest sub-dimension with 2^m > 6 is m = 3.
        assert scheme.class_size == 8
        assert scheme.num_classes == 8
        classes = list(scheme)
        assert len(classes) == 8
        # Classes are contiguous integer blocks.
        assert classes[0].members(cube) == list(range(8))
        assert classes[3].members(cube) == list(range(24, 32))

    def test_first_limits_count(self):
        cube = Hypercube(6)
        assert len(cube.partition_scheme().first(3)) == 3
        assert len(cube.partition_scheme().first(100)) == 8

    def test_representative_belongs_to_class(self, tiny_network):
        try:
            scheme = tiny_network.partition_scheme()
        except ValueError:
            pytest.skip("instance too small for a partition scheme")
        for cls in scheme.first(4):
            assert cls.contains(cls.representative)

    def test_partition_levels_escalate_class_size(self):
        cube = Hypercube(8)
        level0 = cube.partition_scheme(0)
        level1 = cube.partition_scheme(1)
        assert level1.class_size == 2 * level0.class_size
        assert level1.num_classes == level0.num_classes // 2

    def test_too_coarse_level_rejected(self):
        cube = Hypercube(6)
        with pytest.raises(ValueError, match="too coarse"):
            cube.partition_scheme(cube.max_partition_level() + 5)

    def test_max_partition_level_is_admissible(self, tiny_network):
        level = tiny_network.max_partition_level()
        assert level >= 0
        try:
            scheme = tiny_network.partition_scheme(level)
        except ValueError:
            pytest.skip("instance too small for a partition scheme")
        assert scheme.num_classes >= 1

    def test_permutation_partition_fixes_last_symbol(self):
        star = StarGraph(5)
        scheme = star.partition_scheme()
        assert scheme.num_classes == 5
        assert scheme.class_size == 24
        for cls, symbol in zip(scheme, range(1, 6)):
            members = cls.members(star)
            assert len(members) == 24
            assert all(star.node_label(v)[-1] == symbol for v in members)

    def test_permutation_partition_single_level(self):
        star = StarGraph(5)
        with pytest.raises(ValueError):
            star.partition_scheme(1)

    def test_scheme_accepts_concrete_list(self):
        cls = PartitionClass(representative=0, size=1, contains=lambda v: v == 0)
        scheme = PartitionScheme([cls], num_classes=1, class_size=1)
        assert list(scheme) == [cls]
        assert scheme.first(5) == [cls]
