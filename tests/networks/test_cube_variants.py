"""Structural tests for the hypercube variants of Theorem 3.

Every variant must satisfy the properties the paper's argument actually uses:
the stated regular degree, adjacency symmetry, connectivity at least the
diagnosability (checked exactly on small instances), and a partition into
node-disjoint connected classes.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks import (
    AugmentedCube,
    CrossedCube,
    EnhancedHypercube,
    FoldedHypercube,
    ShuffleCube,
    TwistedCube,
    TwistedNCube,
)
from repro.networks.crossed_cube import pair_related_partner
from repro.networks.properties import check_partition, is_regular

VARIANTS = [
    pytest.param(CrossedCube(5), 5, id="CQ5"),
    pytest.param(CrossedCube(6), 6, id="CQ6"),
    pytest.param(TwistedCube(5), 5, id="TQ5"),
    pytest.param(TwistedCube(7), 7, id="TQ7"),
    pytest.param(FoldedHypercube(5), 6, id="FQ5"),
    pytest.param(FoldedHypercube(6), 7, id="FQ6"),
    pytest.param(EnhancedHypercube(5, 3), 6, id="Q5,3"),
    pytest.param(EnhancedHypercube(6, 4), 7, id="Q6,4"),
    pytest.param(AugmentedCube(4), 7, id="AQ4"),
    pytest.param(AugmentedCube(5), 9, id="AQ5"),
    pytest.param(ShuffleCube(6), 6, id="SQ6"),
    pytest.param(TwistedNCube(5), 5, id="TQ'5"),
    pytest.param(TwistedNCube(6), 6, id="TQ'6"),
]


@pytest.mark.parametrize("network, degree", VARIANTS)
class TestVariantStructure:
    def test_node_count(self, network, degree):
        assert network.num_nodes == 2**network.dimension

    def test_regular_of_stated_degree(self, network, degree):
        assert is_regular(network)
        assert network.degree(0) == degree
        assert network.max_degree == degree

    def test_no_self_loops_or_duplicates(self, network, degree):
        for v in range(network.num_nodes):
            neighbors = list(network.neighbors(v))
            assert v not in neighbors
            assert len(neighbors) == len(set(neighbors))

    def test_adjacency_symmetric(self, network, degree):
        for v in range(network.num_nodes):
            for w in network.neighbors(v):
                assert v in network.neighbors(w)

    def test_connected(self, network, degree):
        assert nx.is_connected(network.to_networkx())

    def test_vertex_connectivity_matches_claim(self, network, degree):
        measured = nx.node_connectivity(network.to_networkx())
        assert measured == network.connectivity()

    def test_partition_classes_valid(self, network, degree):
        try:
            scheme = network.partition_scheme()
        except ValueError:
            pytest.skip("no partition scheme at this size")
        check_partition(network, scheme, max_classes=4)


class TestCrossedCube:
    def test_pair_relation_matches_table(self):
        # R = {(00,00), (10,10), (01,11), (11,01)}
        assert pair_related_partner(0b00) == 0b00
        assert pair_related_partner(0b10) == 0b10
        assert pair_related_partner(0b01) == 0b11
        assert pair_related_partner(0b11) == 0b01

    def test_cq1_and_cq2(self):
        assert sorted(CrossedCube(1).neighbors(0)) == [1]
        cq2 = CrossedCube(2)
        assert all(len(cq2.neighbors(v)) == 2 for v in range(4))
        assert nx.is_isomorphic(cq2.to_networkx(), nx.cycle_graph(4))

    def test_prefix_halves_induce_crossed_cubes(self):
        cq = CrossedCube(6)
        graph = cq.to_networkx()
        half = cq.num_nodes // 2
        low = graph.subgraph(range(half))
        high = graph.subgraph(range(half, cq.num_nodes))
        reference = CrossedCube(5).to_networkx()
        assert nx.is_isomorphic(low, reference)
        assert nx.is_isomorphic(high, reference)

    def test_diagnosability_requires_n_at_least_4(self):
        with pytest.raises(ValueError):
            CrossedCube(3).diagnosability()
        assert CrossedCube(4).diagnosability() == 4

    def test_differs_from_hypercube(self):
        from repro.networks import Hypercube

        cq = CrossedCube(4).to_networkx()
        q = Hypercube(4).to_networkx()
        assert set(cq.edges()) != set(q.edges())


class TestTwistedCube:
    def test_even_dimension_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            TwistedCube(4)

    def test_partition_fixes_even_number_of_bits(self):
        tq = TwistedCube(7)
        scheme = tq.partition_scheme()
        # δ = 7 -> smallest odd m with 2^m > 7 is 3, so 4 (an even number of)
        # leading bits are fixed and the classes are copies of TQ_3.
        assert scheme.class_size == 2**3
        assert scheme.num_classes == 16
        assert (tq.dimension - 3) % 2 == 0

    def test_quarters_induce_smaller_twisted_cube(self):
        tq = TwistedCube(5)
        graph = tq.to_networkx()
        quarter = tq.num_nodes // 4
        reference = TwistedCube(3).to_networkx()
        for q in range(4):
            block = range(q * quarter, (q + 1) * quarter)
            assert nx.is_isomorphic(graph.subgraph(block), reference)

    def test_diagnosability(self):
        assert TwistedCube(5).diagnosability() == 5
        with pytest.raises(ValueError):
            TwistedCube(3).diagnosability()


class TestFoldedAndEnhanced:
    def test_folded_contains_complement_edges(self):
        fq = FoldedHypercube(5)
        for v in range(fq.num_nodes):
            assert (v ^ 0b11111) in fq.neighbors(v)

    def test_folded_is_enhanced_with_k_equal_n(self):
        fq = FoldedHypercube(5)
        eq = EnhancedHypercube(5, 5)
        assert set(fq.edges()) == set(eq.edges())

    def test_enhanced_contains_hypercube_spanning_subgraph(self):
        from repro.networks import Hypercube

        eq = EnhancedHypercube(5, 3)
        cube_edges = set(Hypercube(5).edges())
        assert cube_edges.issubset(set(eq.edges()))

    def test_enhanced_k_validation(self):
        with pytest.raises(ValueError):
            EnhancedHypercube(5, 1)
        with pytest.raises(ValueError):
            EnhancedHypercube(5, 6)

    def test_diagnosability_is_n_plus_1(self):
        assert FoldedHypercube(5).diagnosability() == 6
        assert EnhancedHypercube(6, 3).diagnosability() == 7
        with pytest.raises(ValueError):
            FoldedHypercube(3).diagnosability()


class TestAugmentedCube:
    def test_recursive_structure(self):
        aq = AugmentedCube(4)
        graph = aq.to_networkx()
        half = aq.num_nodes // 2
        reference = AugmentedCube(3).to_networkx()
        assert nx.is_isomorphic(graph.subgraph(range(half)), reference)
        assert nx.is_isomorphic(graph.subgraph(range(half, aq.num_nodes)), reference)

    def test_cross_edges_are_matching_and_complement(self):
        aq = AugmentedCube(4)
        half = aq.num_nodes // 2
        for v in range(half):
            cross = [w for w in aq.neighbors(v) if w >= half]
            assert set(cross) == {v + half, (v ^ (half - 1)) + half}

    def test_aq1_and_aq2(self):
        assert AugmentedCube(1).degree(0) == 1
        aq2 = AugmentedCube(2)
        assert all(aq2.degree(v) == 3 for v in range(4))
        assert nx.is_isomorphic(aq2.to_networkx(), nx.complete_graph(4))

    def test_diagnosability(self):
        assert AugmentedCube(5).diagnosability() == 9
        with pytest.raises(ValueError):
            AugmentedCube(4).diagnosability()


class TestShuffleCube:
    def test_dimension_validation(self):
        for bad in (4, 5, 7, 8):
            with pytest.raises(ValueError, match="mod 4"):
                ShuffleCube(bad)

    def test_sq2_is_a_cycle(self):
        assert nx.is_isomorphic(ShuffleCube(2).to_networkx(), nx.cycle_graph(4))

    def test_sixteen_copies_of_smaller_shuffle_cube(self):
        sq = ShuffleCube(6)
        graph = sq.to_networkx()
        block = sq.num_nodes // 16
        reference = ShuffleCube(2).to_networkx()
        for prefix in range(16):
            nodes = range(prefix * block, (prefix + 1) * block)
            assert nx.is_isomorphic(graph.subgraph(nodes), reference)

    def test_connectivity_at_least_diagnosability(self):
        sq = ShuffleCube(6)
        assert nx.node_connectivity(sq.to_networkx()) >= sq.diagnosability()

    def test_diagnosability(self):
        assert ShuffleCube(6).diagnosability() == 6
        with pytest.raises(ValueError):
            ShuffleCube(2).diagnosability()


class TestTwistedNCube:
    def test_requires_dimension_at_least_3(self):
        with pytest.raises(ValueError):
            TwistedNCube(2)

    def test_twist_replaces_two_edges_of_q3(self):
        from repro.networks import Hypercube

        tq = TwistedNCube(3)
        q3 = Hypercube(3)
        ours = set(tq.edges())
        plain = set(q3.edges())
        removed = plain - ours
        added = ours - plain
        assert removed == {(0b000, 0b001), (0b100, 0b101)}
        assert added == {(0b000, 0b101), (0b001, 0b100)}

    def test_diameter_smaller_than_hypercube(self):
        from repro.networks import Hypercube

        tq = TwistedNCube(3)
        assert nx.diameter(tq.to_networkx()) == nx.diameter(Hypercube(3).to_networkx()) - 1

    def test_half_with_leading_zero_is_plain_hypercube(self):
        from repro.networks import Hypercube

        tq = TwistedNCube(5)
        graph = tq.to_networkx()
        half = tq.num_nodes // 2
        assert nx.is_isomorphic(
            graph.subgraph(range(half)), Hypercube(4).to_networkx()
        )

    def test_half_with_leading_one_is_twisted(self):
        tq = TwistedNCube(5)
        graph = tq.to_networkx()
        half = tq.num_nodes // 2
        assert nx.is_isomorphic(
            graph.subgraph(range(half, tq.num_nodes)), TwistedNCube(4).to_networkx()
        )

    def test_diagnosability(self):
        assert TwistedNCube(5).diagnosability() == 5
        with pytest.raises(ValueError):
            TwistedNCube(3).diagnosability()
