"""Tests for the extension topologies (locally twisted cube, Möbius cube)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.diagnosis import GeneralDiagnoser
from repro.core.faults import clustered_faults, random_faults
from repro.core.syndrome import generate_syndrome
from repro.networks.extensions import LocallyTwistedCube, MobiusCube
from repro.networks.properties import check_partition, is_regular

EXTENSION_INSTANCES = [
    pytest.param(LocallyTwistedCube(5), 5, id="LTQ5"),
    pytest.param(LocallyTwistedCube(6), 6, id="LTQ6"),
    pytest.param(MobiusCube(5, variant=1), 5, id="1-MQ5"),
    pytest.param(MobiusCube(5, variant=0), 5, id="0-MQ5"),
    pytest.param(MobiusCube(6, variant=1), 6, id="1-MQ6"),
]


@pytest.mark.parametrize("network, degree", EXTENSION_INSTANCES)
class TestExtensionStructure:
    def test_regular(self, network, degree):
        assert is_regular(network)
        assert network.degree(0) == degree

    def test_no_self_loops_or_duplicates(self, network, degree):
        for v in range(network.num_nodes):
            neighbors = list(network.neighbors(v))
            assert v not in neighbors
            assert len(neighbors) == len(set(neighbors))

    def test_adjacency_symmetric(self, network, degree):
        for v in range(network.num_nodes):
            for w in network.neighbors(v):
                assert v in network.neighbors(w)

    def test_connected_and_connectivity_claim(self, network, degree):
        graph = network.to_networkx()
        assert nx.is_connected(graph)
        assert nx.node_connectivity(graph) == network.connectivity()

    def test_partition_classes_valid(self, network, degree):
        try:
            scheme = network.partition_scheme()
        except ValueError:
            pytest.skip("instance too small for a partition")
        check_partition(network, scheme, max_classes=4)


class TestExtensionDefinitions:
    def test_ltq2_is_q2(self):
        assert nx.is_isomorphic(LocallyTwistedCube(2).to_networkx(), nx.cycle_graph(4))

    def test_ltq_halves_induce_smaller_ltq(self):
        ltq = LocallyTwistedCube(5)
        graph = ltq.to_networkx()
        half = ltq.num_nodes // 2
        reference = LocallyTwistedCube(4).to_networkx()
        assert nx.is_isomorphic(graph.subgraph(range(half)), reference)
        assert nx.is_isomorphic(graph.subgraph(range(half, ltq.num_nodes)), reference)

    def test_ltq_differs_from_hypercube(self):
        from repro.networks import Hypercube

        assert set(LocallyTwistedCube(4).edges()) != set(Hypercube(4).edges())

    def test_mobius_halves_induce_variant_subcubes(self):
        mq = MobiusCube(5, variant=1)
        graph = mq.to_networkx()
        half = mq.num_nodes // 2
        assert nx.is_isomorphic(graph.subgraph(range(half)),
                                MobiusCube(4, variant=0).to_networkx())
        assert nx.is_isomorphic(graph.subgraph(range(half, mq.num_nodes)),
                                MobiusCube(4, variant=1).to_networkx())

    def test_mobius_variant_validation(self):
        with pytest.raises(ValueError):
            MobiusCube(5, variant=2)

    def test_diagnosability_validation(self):
        with pytest.raises(ValueError):
            LocallyTwistedCube(3).diagnosability()
        with pytest.raises(ValueError):
            MobiusCube(4).diagnosability()
        assert LocallyTwistedCube(6).diagnosability() == 6
        assert MobiusCube(6, variant=1).diagnosability() == 6
        assert MobiusCube(6, variant=0).diagnosability() == 6


class TestExtensionDiagnosis:
    """The generic diagnoser handles the extension families unchanged."""

    @pytest.mark.parametrize("network", [LocallyTwistedCube(8), MobiusCube(8, variant=1)])
    @pytest.mark.parametrize("behavior", ["random", "mimic"])
    def test_exact_diagnosis_at_maximum_fault_count(self, network, behavior):
        delta = network.diagnosability()
        faults = random_faults(network, delta, seed=3)
        syndrome = generate_syndrome(network, faults, behavior=behavior, seed=3)
        result = GeneralDiagnoser(network).diagnose(syndrome)
        assert result.faulty == faults

    def test_exact_diagnosis_clustered(self):
        network = LocallyTwistedCube(8)
        faults = clustered_faults(network, 8, seed=5)
        syndrome = generate_syndrome(network, faults, seed=5)
        assert GeneralDiagnoser(network).diagnose(syndrome).faulty == faults

    def test_zero_mobius_cube_diagnosis(self):
        network = MobiusCube(8, variant=0)
        faults = random_faults(network, network.diagnosability(), seed=9)
        syndrome = generate_syndrome(network, faults, seed=9)
        assert GeneralDiagnoser(network).diagnose(syndrome).faulty == faults
