"""Tests for the hypercube topology and its helpers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks import Hypercube, gray_code_cycle


class TestHypercubeStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7])
    def test_node_count(self, n):
        assert Hypercube(n).num_nodes == 2**n

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_regular_of_degree_n(self, n):
        cube = Hypercube(n)
        assert cube.max_degree == n
        assert cube.min_degree == n
        assert all(len(cube.neighbors(v)) == n for v in range(cube.num_nodes))

    def test_neighbors_differ_in_one_bit(self):
        cube = Hypercube(6)
        for v in [0, 13, 63]:
            for w in cube.neighbors(v):
                assert cube.hamming_distance(v, w) == 1

    def test_adjacency_symmetric(self):
        cube = Hypercube(5)
        for u, v in cube.edges():
            assert u in cube.neighbors(v)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_matches_networkx_hypercube(self, n):
        ours = Hypercube(n).to_networkx()
        reference = nx.convert_node_labels_to_integers(
            nx.hypercube_graph(n), ordering="sorted"
        )
        assert nx.is_isomorphic(ours, reference)

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_vertex_connectivity_equals_n(self, n):
        assert nx.node_connectivity(Hypercube(n).to_networkx()) == n

    def test_edge_count(self):
        cube = Hypercube(6)
        assert cube.num_edges() == 6 * 2**6 // 2


class TestHypercubeMetadata:
    def test_diagnosability_equals_n(self):
        assert Hypercube(7).diagnosability() == 7
        assert Hypercube(5).diagnosability() == 5

    def test_diagnosability_undefined_below_5(self):
        with pytest.raises(ValueError, match="n >= 5"):
            Hypercube(4).diagnosability()

    def test_connectivity_equals_n(self):
        assert Hypercube(9).connectivity() == 9


class TestSubcubes:
    def test_subcube_nodes_fix_prefix(self):
        cube = Hypercube(6)
        nodes = cube.subcube_nodes((1, 0, 1), 3)
        assert len(nodes) == 8
        for v in nodes:
            assert cube.node_label(v)[:3] == (1, 0, 1)

    def test_subcube_requires_matching_prefix_length(self):
        cube = Hypercube(6)
        with pytest.raises(ValueError):
            cube.subcube_nodes((1, 0), 3)

    def test_subcube_induces_hypercube(self):
        cube = Hypercube(6)
        nodes = cube.subcube_nodes((0, 1, 1), 3)
        sub = cube.to_networkx().subgraph(nodes)
        assert nx.is_isomorphic(
            sub, nx.convert_node_labels_to_integers(nx.hypercube_graph(3))
        )


class TestGrayCode:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 8])
    def test_visits_every_node_once(self, m):
        cycle = gray_code_cycle(m)
        assert len(cycle) == 2**m
        assert len(set(cycle)) == 2**m

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 8])
    def test_consecutive_nodes_adjacent(self, m):
        cycle = gray_code_cycle(m)
        for i in range(len(cycle)):
            a, b = cycle[i], cycle[(i + 1) % len(cycle)]
            assert (a ^ b).bit_count() == 1

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            gray_code_cycle(0)
