"""Tests for k-ary n-cubes and augmented k-ary n-cubes (Theorem 4)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks import AugmentedKAryNCube, KAryNCube
from repro.networks.kary_ncube import EXCLUDED_KARY_CASES
from repro.networks.properties import check_partition, is_regular


class TestKAryNCube:
    @pytest.mark.parametrize("n,k", [(2, 3), (2, 5), (3, 3), (3, 4), (1, 7)])
    def test_node_count(self, n, k):
        assert KAryNCube(n, k).num_nodes == k**n

    @pytest.mark.parametrize("n,k", [(2, 4), (3, 3), (2, 6)])
    def test_regular_of_degree_2n(self, n, k):
        net = KAryNCube(n, k)
        assert is_regular(net)
        assert net.degree(0) == 2 * n

    def test_neighbors_differ_by_one_mod_k(self):
        net = KAryNCube(3, 5)
        for v in [0, 62, 124]:
            label = net.node_label(v)
            for w in net.neighbors(v):
                other = net.node_label(w)
                diffs = [(i, a, b) for i, (a, b) in enumerate(zip(label, other)) if a != b]
                assert len(diffs) == 1
                _, a, b = diffs[0]
                assert (a - b) % 5 in (1, 4)

    def test_adjacency_symmetric(self):
        net = KAryNCube(2, 5)
        for v in range(net.num_nodes):
            for w in net.neighbors(v):
                assert v in net.neighbors(w)

    def test_matches_networkx_torus(self):
        net = KAryNCube(2, 4)
        reference = nx.grid_graph(dim=[4, 4], periodic=True)
        assert nx.is_isomorphic(net.to_networkx(), reference)

    @pytest.mark.parametrize("n,k", [(2, 4), (2, 5), (3, 3)])
    def test_vertex_connectivity_is_2n(self, n, k):
        net = KAryNCube(n, k)
        assert nx.node_connectivity(net.to_networkx()) == 2 * n

    def test_requires_k_at_least_3(self):
        with pytest.raises(ValueError):
            KAryNCube(3, 2)

    def test_diagnosability_is_2n(self):
        assert KAryNCube(3, 6).diagnosability() == 6
        assert KAryNCube(2, 6).diagnosability() == 4

    @pytest.mark.parametrize("k,n", sorted(EXCLUDED_KARY_CASES))
    def test_excluded_cases_raise(self, k, n):
        with pytest.raises(ValueError, match="excluded"):
            KAryNCube(n, k).diagnosability()

    def test_partition_classes_are_subcubes(self):
        net = KAryNCube(3, 5)
        scheme = net.partition_scheme()
        assert scheme.class_size == 25  # smallest 5^m > 6 is m = 2
        assert scheme.num_classes == 5
        check_partition(net, scheme)


class TestAugmentedKAryNCube:
    @pytest.mark.parametrize("n,k", [(2, 4), (2, 5), (3, 3)])
    def test_regular_of_degree_4n_minus_2(self, n, k):
        net = AugmentedKAryNCube(n, k)
        assert is_regular(net)
        assert net.degree(0) == 4 * n - 2

    def test_no_duplicate_neighbors(self):
        net = AugmentedKAryNCube(3, 4)
        for v in [0, 21, 63]:
            neighbors = list(net.neighbors(v))
            assert len(neighbors) == len(set(neighbors))
            assert v not in neighbors

    def test_adjacency_symmetric(self):
        net = AugmentedKAryNCube(2, 5)
        for v in range(net.num_nodes):
            for w in net.neighbors(v):
                assert v in net.neighbors(w)

    def test_contains_kary_ncube_as_spanning_subgraph(self):
        augmented = AugmentedKAryNCube(3, 4)
        plain = KAryNCube(3, 4)
        augmented_edges = set(augmented.edges())
        assert set(plain.edges()).issubset(augmented_edges)

    def test_augmented_edges_shift_lowest_digits(self):
        net = AugmentedKAryNCube(3, 5)
        v = net.node_index((2, 3, 4))
        assert net.node_index((2, 4, 0)) in net.neighbors(v)  # +1 on the two lowest digits
        assert net.node_index((3, 4, 0)) in net.neighbors(v)  # +1 on all three digits
        assert net.node_index((1, 2, 3)) in net.neighbors(v)  # -1 on all three digits

    @pytest.mark.parametrize("n,k", [(2, 4), (2, 5)])
    def test_vertex_connectivity_is_4n_minus_2(self, n, k):
        net = AugmentedKAryNCube(n, k)
        assert nx.node_connectivity(net.to_networkx()) == 4 * n - 2

    def test_excluded_case(self):
        with pytest.raises(ValueError):
            AugmentedKAryNCube(2, 3).diagnosability()
        assert AugmentedKAryNCube(3, 4).diagnosability() == 10

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AugmentedKAryNCube(1, 4)
        with pytest.raises(ValueError):
            AugmentedKAryNCube(3, 2)
