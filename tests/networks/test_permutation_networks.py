"""Tests for the star, (n,k)-star, pancake and arrangement graphs (Theorems 5–7)."""

from __future__ import annotations

from math import factorial

import networkx as nx
import pytest

from repro.networks import ArrangementGraph, NKStarGraph, PancakeGraph, StarGraph
from repro.networks.properties import check_partition, is_regular


class TestStarGraph:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_node_count(self, n):
        assert StarGraph(n).num_nodes == factorial(n)

    @pytest.mark.parametrize("n", [4, 5])
    def test_regular_of_degree_n_minus_1(self, n):
        net = StarGraph(n)
        assert is_regular(net)
        assert net.degree(0) == n - 1

    def test_neighbors_swap_first_symbol(self):
        net = StarGraph(4)
        v = net.node_index((1, 2, 3, 4))
        labels = {net.node_label(w) for w in net.neighbors(v)}
        assert labels == {(2, 1, 3, 4), (3, 2, 1, 4), (4, 2, 3, 1)}

    @pytest.mark.parametrize("n", [4, 5])
    def test_vertex_connectivity(self, n):
        assert nx.node_connectivity(StarGraph(n).to_networkx()) == n - 1

    def test_vertex_transitive_structure(self):
        # S_4 is the well-known 24-node, 3-regular star graph.
        net = StarGraph(4)
        graph = net.to_networkx()
        assert nx.is_connected(graph)
        assert nx.diameter(graph) == 4

    def test_diagnosability(self):
        assert StarGraph(5).diagnosability() == 4
        with pytest.raises(ValueError):
            StarGraph(3).diagnosability()

    def test_partition_into_substars(self):
        net = StarGraph(5)
        scheme = net.partition_scheme()
        check_partition(net, scheme)
        # Each class induces S_4.
        cls = scheme.first(1)[0]
        sub = net.to_networkx().subgraph(cls.members(net))
        assert nx.is_isomorphic(sub, StarGraph(4).to_networkx())


class TestNKStarGraph:
    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 2)])
    def test_node_count(self, n, k):
        assert NKStarGraph(n, k).num_nodes == factorial(n) // factorial(n - k)

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3)])
    def test_regular_of_degree_n_minus_1(self, n, k):
        net = NKStarGraph(n, k)
        assert is_regular(net)
        assert net.degree(0) == n - 1

    def test_swap_and_replace_edges(self):
        net = NKStarGraph(5, 3)
        v = net.node_index((1, 2, 3))
        labels = {net.node_label(w) for w in net.neighbors(v)}
        assert labels == {(2, 1, 3), (3, 2, 1), (4, 2, 3), (5, 2, 3)}

    def test_nk_star_with_k1_is_complete_graph(self):
        net = NKStarGraph(5, 1)
        assert nx.is_isomorphic(net.to_networkx(), nx.complete_graph(5))

    def test_nk_star_with_k_n_minus_1_is_star_graph(self):
        net = NKStarGraph(5, 4)
        assert nx.is_isomorphic(net.to_networkx(), StarGraph(5).to_networkx())

    @pytest.mark.parametrize("n,k", [(5, 2), (5, 3)])
    def test_vertex_connectivity(self, n, k):
        assert nx.node_connectivity(NKStarGraph(n, k).to_networkx()) == n - 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NKStarGraph(4, 4)
        with pytest.raises(ValueError):
            NKStarGraph(4, 0)

    def test_diagnosability(self):
        assert NKStarGraph(6, 3).diagnosability() == 5
        with pytest.raises(ValueError):
            NKStarGraph(3, 2).diagnosability()

    def test_partition_classes_induce_smaller_nk_star(self):
        net = NKStarGraph(5, 3)
        scheme = net.partition_scheme()
        check_partition(net, scheme)
        cls = scheme.first(1)[0]
        sub = net.to_networkx().subgraph(cls.members(net))
        assert nx.is_isomorphic(sub, NKStarGraph(4, 2).to_networkx())


class TestPancakeGraph:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_node_count(self, n):
        assert PancakeGraph(n).num_nodes == factorial(n)

    def test_neighbors_are_prefix_reversals(self):
        net = PancakeGraph(4)
        v = net.node_index((1, 2, 3, 4))
        labels = {net.node_label(w) for w in net.neighbors(v)}
        assert labels == {(2, 1, 3, 4), (3, 2, 1, 4), (4, 3, 2, 1)}

    @pytest.mark.parametrize("n", [4, 5])
    def test_regular_of_degree_n_minus_1(self, n):
        net = PancakeGraph(n)
        assert is_regular(net)
        assert net.degree(0) == n - 1

    @pytest.mark.parametrize("n", [4, 5])
    def test_vertex_connectivity(self, n):
        assert nx.node_connectivity(PancakeGraph(n).to_networkx()) == n - 1

    def test_p3_is_cycle(self):
        assert nx.is_isomorphic(PancakeGraph(3).to_networkx(), nx.cycle_graph(6))

    def test_diagnosability(self):
        assert PancakeGraph(5).diagnosability() == 4
        with pytest.raises(ValueError):
            PancakeGraph(3).diagnosability()

    def test_partition_into_smaller_pancakes(self):
        net = PancakeGraph(5)
        scheme = net.partition_scheme()
        check_partition(net, scheme)
        cls = scheme.first(1)[0]
        sub = net.to_networkx().subgraph(cls.members(net))
        assert nx.is_isomorphic(sub, PancakeGraph(4).to_networkx())


class TestArrangementGraph:
    @pytest.mark.parametrize("n,k", [(4, 2), (5, 2), (5, 3), (6, 2)])
    def test_node_count(self, n, k):
        assert ArrangementGraph(n, k).num_nodes == factorial(n) // factorial(n - k)

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 2), (5, 3)])
    def test_regular_of_degree_k_times_n_minus_k(self, n, k):
        net = ArrangementGraph(n, k)
        assert is_regular(net)
        assert net.degree(0) == k * (n - k)

    def test_neighbors_differ_in_one_position(self):
        net = ArrangementGraph(5, 3)
        v = net.node_index((1, 2, 3))
        for w in net.neighbors(v):
            label = net.node_label(w)
            assert sum(a != b for a, b in zip((1, 2, 3), label)) == 1

    def test_arrangement_n_minus_1_is_star_graph(self):
        net = ArrangementGraph(4, 3)
        assert nx.is_isomorphic(net.to_networkx(), StarGraph(4).to_networkx())

    def test_arrangement_k1_is_complete_graph(self):
        net = ArrangementGraph(5, 1)
        assert nx.is_isomorphic(net.to_networkx(), nx.complete_graph(5))

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 2)])
    def test_vertex_connectivity(self, n, k):
        assert nx.node_connectivity(ArrangementGraph(n, k).to_networkx()) == k * (n - k)

    def test_diagnosability(self):
        assert ArrangementGraph(6, 3).diagnosability() == 9
        with pytest.raises(ValueError):
            ArrangementGraph(3, 2).diagnosability()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ArrangementGraph(4, 4)

    def test_partition_fixes_enough_positions(self):
        net = ArrangementGraph(6, 3)
        scheme = net.partition_scheme()
        # δ = 9, so one fixed position (6 classes) is not enough; two are fixed.
        assert scheme.num_classes == 30
        assert scheme.num_classes > net.diagnosability()
        check_partition(net, scheme, max_classes=6)

    def test_partition_levels_reduce_fixed_positions(self):
        net = ArrangementGraph(6, 3)
        coarse = net.partition_scheme(net.max_partition_level())
        assert coarse.num_classes == 6
        assert coarse.class_size == 20
