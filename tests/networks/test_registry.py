"""Tests for the network registry and the structural property checks."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks import (
    FAMILIES,
    available_families,
    check_partition,
    create_network,
    default_instances,
    verify_theorem1_preconditions,
)


class TestRegistry:
    def test_all_paper_families_registered(self):
        from repro.networks import EXTENSION_FAMILIES, PAPER_FAMILIES

        assert len(PAPER_FAMILIES) == 14
        assert set(PAPER_FAMILIES).issubset(FAMILIES)
        assert set(EXTENSION_FAMILIES).issubset(FAMILIES)
        assert set(available_families()) == set(FAMILIES)

    def test_create_network_by_name(self):
        net = create_network("hypercube", dimension=6)
        assert net.num_nodes == 64

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown network family"):
            create_network("mesh")

    def test_small_instances_constructible(self):
        instances = default_instances("small")
        assert len(instances) == len(FAMILIES)
        for name, net in instances.items():
            assert net.num_nodes >= 16, name
            # The quoted diagnosability applies to every registry instance.
            assert net.diagnosability() >= 1

    def test_medium_instances_constructible(self):
        instances = default_instances("medium")
        for name, net in instances.items():
            assert net.num_nodes >= 120, name

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            default_instances("huge")

    def test_specs_carry_paper_theorem(self):
        from repro.networks import PAPER_FAMILIES

        for name, spec in FAMILIES.items():
            if name in PAPER_FAMILIES:
                assert spec.paper_theorem.startswith("Theorem")
            else:
                assert "extension" in spec.paper_theorem


class TestBoundedNetworkCache:
    """The registry memo is the service's bounded LRU (no unbounded growth)."""

    def setup_method(self):
        from repro.networks.registry import clear_network_cache

        clear_network_cache()

    def teardown_method(self):
        from repro.networks.registry import (
            DEFAULT_NETWORK_CACHE_CAPACITY,
            clear_network_cache,
            set_network_cache_capacity,
        )

        set_network_cache_capacity(DEFAULT_NETWORK_CACHE_CAPACITY)
        clear_network_cache()

    def test_cached_network_shares_one_instance(self):
        from repro.networks.registry import cached_network

        first = cached_network("hypercube", dimension=5)
        second = cached_network("hypercube", dimension=5)
        assert first is second

    def test_cache_stats_accessor(self):
        from repro.networks.registry import cache_stats, cached_network

        before = cache_stats()
        cached_network("hypercube", dimension=5)
        cached_network("hypercube", dimension=5)
        after = cache_stats()
        assert after.hits - before.hits == 1
        assert after.misses - before.misses == 1
        assert after.capacity >= 1

    def test_capacity_bound_evicts_least_recent(self):
        from repro.networks.registry import (
            cache_stats,
            cached_network,
            set_network_cache_capacity,
        )

        set_network_cache_capacity(2)
        q5 = cached_network("hypercube", dimension=5)
        cached_network("star", n=5)
        cached_network("hypercube", dimension=5)  # refresh: star becomes LRU
        cached_network("pancake", n=4)  # evicts star
        evictions_before = cache_stats().evictions
        assert cached_network("hypercube", dimension=5) is q5  # survived
        assert cache_stats().evictions == evictions_before
        assert cache_stats().size == 2

    def test_clear_network_cache_semantics_preserved(self):
        from repro.networks.registry import cached_network, clear_network_cache

        first = cached_network("hypercube", dimension=5)
        clear_network_cache()
        second = cached_network("hypercube", dimension=5)
        assert first is not second  # a cleared memo rebuilds from scratch


class TestPropertyChecks:
    def test_theorem1_preconditions_on_small_families(self, tiny_network):
        compute = tiny_network.num_nodes <= 256
        report = verify_theorem1_preconditions(tiny_network, compute_connectivity=compute)
        assert report.regular
        assert report.satisfies_theorem1
        if compute:
            assert report.connectivity_measured == report.connectivity_claimed

    def test_report_row_shape(self, q5):
        report = verify_theorem1_preconditions(q5, compute_connectivity=False)
        row = report.as_row()
        assert row[0] == "hypercube"
        assert row[1] == 32
        assert len(row) == 8

    def test_check_partition_detects_bad_size(self, q5):
        scheme = q5.partition_scheme()
        # Tamper with the advertised size of the first class.
        bad = list(scheme)
        object.__setattr__(bad[0], "size", bad[0].size + 1)
        from repro.networks.base import PartitionScheme

        tampered = PartitionScheme(bad, num_classes=scheme.num_classes,
                                   class_size=scheme.class_size)
        with pytest.raises(AssertionError, match="size"):
            check_partition(q5, tampered, max_classes=1)

    def test_check_partition_accepts_valid_scheme(self, q5):
        check_partition(q5, q5.partition_scheme())

    def test_partition_covers_all_nodes(self, small_network):
        try:
            scheme = small_network.partition_scheme()
        except ValueError:
            pytest.skip("no partition scheme for this instance")
        if small_network.num_nodes > 1500:
            pytest.skip("too large for the exhaustive coverage check")
        check_partition(small_network, scheme)
