"""Worker-pool execution tests: chunked plans, zero recompilation, persistence."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.trials import DistributedTrialPlan, TrialPlan
from repro.parallel import WorkerPool, default_worker_count


def _norm(results):
    """Strip wall-clock noise; everything else must be bit-identical."""
    return [dataclasses.replace(r, elapsed_seconds=0.0) for r in results]


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(max_workers=2) as shared_pool:
        yield shared_pool


@pytest.fixture(scope="module")
def two_cube_plan():
    return TrialPlan.from_factors(
        [("Q_6", "hypercube", {"dimension": 6}), ("Q_7", "hypercube", {"dimension": 7})],
        seeds=(3, 4),
    )


class TestChunkedTrialPlan:
    def test_pooled_equals_serial(self, pool, two_cube_plan):
        serial = _norm(two_cube_plan.run())
        assert two_cube_plan.last_run_stats is None  # serial leaves no stats
        pooled = _norm(two_cube_plan.run(pool=pool))
        assert pooled == serial

    def test_zero_worker_recompilation(self, pool, two_cube_plan):
        two_cube_plan.run(pool=pool)
        stats = two_cube_plan.last_run_stats
        assert stats is not None
        assert stats["worker_compiles"] == 0
        assert stats["topologies_published"] == 2
        assert stats["chunks"] >= 2

    def test_single_topology_plan_still_chunks(self, pool):
        """The old per-group fan-out ran one-group plans inline; chunking must not."""
        plan = TrialPlan.from_factors(
            [("Q_7", "hypercube", {"dimension": 7})], seeds=6,
        )
        serial = _norm(plan.run())
        pooled = _norm(plan.run(pool=pool, chunk_size=2))
        assert pooled == serial
        assert plan.last_run_stats["chunks"] == 3
        assert plan.last_run_stats["worker_compiles"] == 0

    def test_chunk_size_does_not_change_results(self, pool, two_cube_plan):
        reference = _norm(two_cube_plan.run(pool=pool))
        for chunk_size in (1, 3, 100):
            assert _norm(two_cube_plan.run(pool=pool, chunk_size=chunk_size)) == reference

    def test_parallel_flag_owns_a_throwaway_pool(self, two_cube_plan):
        serial = _norm(two_cube_plan.run())
        assert _norm(two_cube_plan.run(parallel=True, max_workers=2)) == serial

    def test_respawn_baseline_still_correct(self, two_cube_plan):
        """share_topology=False (the benchmark baseline) changes cost, not results."""
        serial = _norm(two_cube_plan.run())
        with WorkerPool(max_workers=2) as pool:
            baseline = _norm(two_cube_plan.run(pool=pool, share_topology=False))
        assert baseline == serial


class TestChunkedDistributedPlan:
    def test_pooled_equals_serial(self, pool):
        plan = DistributedTrialPlan.from_factors(
            [("Q_6", "hypercube", {"dimension": 6})],
            seeds=(5,),
            loss_rates=(0.0, 0.1),
            root_counts=(1, 2),
        )
        serial = _norm(plan.run())
        pooled = _norm(plan.run(pool=pool, chunk_size=1))
        assert pooled == serial
        assert plan.last_run_stats["worker_compiles"] == 0


class TestPoolBasics:
    def test_default_worker_count_bounds(self):
        assert 1 <= default_worker_count() <= 4

    def test_pool_is_reusable_across_plans(self, pool, two_cube_plan):
        first = _norm(two_cube_plan.run(pool=pool))
        second = _norm(two_cube_plan.run(pool=pool))
        assert first == second

    def test_submit_plain_callables(self, pool):
        assert pool.submit(pow, 2, 10).result() == 1024
