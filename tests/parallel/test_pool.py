"""Worker-pool execution tests: chunked plans, zero recompilation, persistence."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.trials import DistributedTrialPlan, TrialPlan
from repro.parallel import WorkerPool, default_worker_count


def _norm(results):
    """Strip wall-clock noise; everything else must be bit-identical."""
    return [dataclasses.replace(r, elapsed_seconds=0.0) for r in results]


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(max_workers=2) as shared_pool:
        yield shared_pool


@pytest.fixture(scope="module")
def two_cube_plan():
    return TrialPlan.from_factors(
        [("Q_6", "hypercube", {"dimension": 6}), ("Q_7", "hypercube", {"dimension": 7})],
        seeds=(3, 4),
    )


class TestChunkedTrialPlan:
    def test_pooled_equals_serial(self, pool, two_cube_plan):
        serial = _norm(two_cube_plan.run())
        assert two_cube_plan.last_run_stats is None  # serial leaves no stats
        pooled = _norm(two_cube_plan.run(pool=pool))
        assert pooled == serial

    def test_zero_worker_recompilation(self, pool, two_cube_plan):
        two_cube_plan.run(pool=pool)
        stats = two_cube_plan.last_run_stats
        assert stats is not None
        assert stats["worker_compiles"] == 0
        # Pair members ship through shared memory with the topology, so the
        # workers' syndrome generation never rebuilds them either.
        assert stats["worker_pair_builds"] == 0
        assert stats["topologies_published"] == 2
        assert stats["chunks"] >= 2

    def test_single_topology_plan_still_chunks(self, pool):
        """The old per-group fan-out ran one-group plans inline; chunking must not."""
        plan = TrialPlan.from_factors(
            [("Q_7", "hypercube", {"dimension": 7})], seeds=6,
        )
        serial = _norm(plan.run())
        pooled = _norm(plan.run(pool=pool, chunk_size=2))
        assert pooled == serial
        assert plan.last_run_stats["chunks"] == 3
        assert plan.last_run_stats["worker_compiles"] == 0

    def test_chunk_size_does_not_change_results(self, pool, two_cube_plan):
        reference = _norm(two_cube_plan.run(pool=pool))
        for chunk_size in (1, 3, 100):
            assert _norm(two_cube_plan.run(pool=pool, chunk_size=chunk_size)) == reference

    def test_parallel_flag_owns_a_throwaway_pool(self, two_cube_plan):
        serial = _norm(two_cube_plan.run())
        assert _norm(two_cube_plan.run(parallel=True, max_workers=2)) == serial

    def test_respawn_baseline_still_correct(self, two_cube_plan):
        """share_topology=False (the benchmark baseline) changes cost, not results."""
        serial = _norm(two_cube_plan.run())
        with WorkerPool(max_workers=2) as pool:
            baseline = _norm(two_cube_plan.run(pool=pool, share_topology=False))
        assert baseline == serial


class TestChunkedDistributedPlan:
    def test_pooled_equals_serial(self, pool):
        plan = DistributedTrialPlan.from_factors(
            [("Q_6", "hypercube", {"dimension": 6})],
            seeds=(5,),
            loss_rates=(0.0, 0.1),
            root_counts=(1, 2),
        )
        serial = _norm(plan.run())
        pooled = _norm(plan.run(pool=pool, chunk_size=1))
        assert pooled == serial
        assert plan.last_run_stats["worker_compiles"] == 0


class TestPairMemberShipping:
    def test_fresh_workers_attach_pair_members_without_building(self):
        """A pool forked before any compile still never builds pair arrays.

        This is the case shared pair members exist for: the worker cannot
        have inherited them through fork, so a zero delta proves they came
        out of the shared segment.
        """
        plan = TrialPlan.from_factors(
            [("Q_6", "hypercube", {"dimension": 6})], seeds=(11, 12),
        )
        with WorkerPool(max_workers=2) as fresh_pool:
            # Fork the workers before the coordinator compiles anything, so
            # nothing can be inherited.
            fresh_pool.submit(pow, 2, 2).result()
            plan.run(pool=fresh_pool)
        assert plan.last_run_stats["worker_compiles"] == 0
        assert plan.last_run_stats["worker_pair_builds"] == 0

    def test_worker_topology_cache_is_bounded(self):
        """Re-published topologies must not pin one mapping per name forever."""
        from repro.backend.csr import compile_network
        from repro.networks.registry import create_network
        from repro.parallel import pool as pool_module
        from repro.parallel.shm import detach, publish_topology

        csr = compile_network(create_network("hypercube", dimension=5))
        cache = pool_module._TOPOLOGY_CACHE
        known = set(cache)
        segments = []
        try:
            # Each publish mints a fresh segment name — the service's
            # evict/release/re-publish cycle seen from the worker side.
            for _ in range(pool_module._TOPOLOGY_CACHE_LIMIT + 3):
                handle, segment = publish_topology(csr)
                segments.append(segment)
                attached = pool_module.worker_topology(handle)
                assert attached.num_nodes == csr.num_nodes
                attached = None  # drop our views so eviction can unmap
            assert len(cache) <= pool_module._TOPOLOGY_CACHE_LIMIT
            # Evicted mappings either unmapped on the spot or await their
            # views' death in the retired list; none are silently pinned.
            assert len(pool_module._TOPOLOGY_RETIRED) <= 1
        finally:
            for name in [n for n in cache if n not in known]:
                detach(cache.pop(name)._shm)
            pool_module._TOPOLOGY_RETIRED[:] = [
                s for s in pool_module._TOPOLOGY_RETIRED
                if not pool_module._try_unmap(s)
            ]
            for segment in segments:
                segment.close()

    def test_worker_health_reports_pair_builds(self, pool):
        for report in pool.health():
            assert "pair_builds" in report
            assert report["pair_builds"] >= 0

    def test_publish_upgrades_to_pair_members(self):
        from repro.backend.csr import compile_network
        from repro.networks.registry import create_network

        from multiprocessing import shared_memory

        def exists(name):
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return False
            segment.close()
            return True

        csr = compile_network(create_network("hypercube", dimension=6))
        with WorkerPool(max_workers=1) as own_pool:
            plain = own_pool.publish_topology(csr)
            assert plain.num_pairs == 0
            upgraded = own_pool.publish_topology(csr, include_pair_members=True)
            assert upgraded.num_pairs == csr.num_pairs
            assert upgraded.name != plain.name
            # The plain segment must survive the upgrade: tasks already
            # queued with its handle still have to attach it.
            assert exists(plain.name)
            # A pair-carrying segment satisfies later plain requests (superset).
            assert own_pool.publish_topology(csr) is upgraded
        assert not exists(plain.name) and not exists(upgraded.name)

    def test_release_topology_drops_segment_and_memo(self):
        from multiprocessing import shared_memory

        from repro.backend.csr import compile_network
        from repro.networks.registry import create_network

        csr = compile_network(create_network("hypercube", dimension=5))
        with WorkerPool(max_workers=1) as own_pool:
            handle = own_pool.publish_topology(csr, include_pair_members=True)
            own_pool.release_topology(csr)
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=handle.name)
            own_pool.release_topology(csr)  # unknown now: ignored
            # A fresh publish after release mints a new segment.
            assert own_pool.publish_topology(csr).name != handle.name


class TestPoolBasics:
    def test_default_worker_count_bounds(self):
        assert 1 <= default_worker_count() <= 4

    def test_pool_is_reusable_across_plans(self, pool, two_cube_plan):
        first = _norm(two_cube_plan.run(pool=pool))
        second = _norm(two_cube_plan.run(pool=pool))
        assert first == second

    def test_submit_plain_callables(self, pool):
        assert pool.submit(pow, 2, 10).result() == 1024
