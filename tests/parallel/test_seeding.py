"""Seed-derivation tests: parallel sweeps must be bit-identical to serial."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.trials import TrialPlan
from repro.parallel import derive_seed, spawn_seeds


class TestSpawnSeeds:
    def test_deterministic_and_positional(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)
        # A prefix of a longer spawn is the shorter spawn: replicate i never
        # depends on how many replicates were requested after it.
        assert spawn_seeds(7, 3) == spawn_seeds(7, 5)[:3]

    def test_independent_of_base(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)

    def test_distinct_within_a_spawn(self):
        seeds = spawn_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_empty_and_invalid(self):
        assert spawn_seeds(0, 0) == ()
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestDeriveSeed:
    def test_path_determinism(self):
        assert derive_seed(3, 1, 2) == derive_seed(3, 1, 2)
        assert derive_seed(3, 1, 2) != derive_seed(3, 2, 1)
        assert derive_seed(3) != derive_seed(4)

    def test_rejects_negative_path(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)


class TestWorkerCountInvariance:
    """The satellite fix: results are a function of the table, not the pool."""

    def test_parallel_sweeps_are_bit_identical_to_serial(self):
        plan = TrialPlan.from_factors(
            [("Q_6", "hypercube", {"dimension": 6}),
             ("Q_7", "hypercube", {"dimension": 7})],
            seeds=4,  # spawned replicate seeds, positional by construction
            placements=("random", "clustered"),
        )
        def norm(results):
            return [dataclasses.replace(r, elapsed_seconds=0.0) for r in results]

        serial = norm(plan.run())
        for workers in (1, 2, 3):
            pooled = norm(plan.run(parallel=True, max_workers=workers))
            assert pooled == serial, f"{workers}-worker run diverged from serial"

    def test_spawned_seeds_flow_into_specs(self):
        plan = TrialPlan.from_factors(
            [("Q_6", "hypercube", {"dimension": 6})], seeds=3, base_seed=9,
        )
        assert [t.seed for t in plan.trials] == list(spawn_seeds(9, 3))
