"""ShardedSetBuilder behaviour beyond the differential harness.

The cross-backend equivalence lives in ``tests/differential``; these tests
cover the builder's own contract — argument validation, certificate early
exit, reuse, granularity plumbing, and the pool round-trip details.
"""

from __future__ import annotations

import pytest

from repro.backend.array_syndrome import ArraySyndrome
from repro.backend.csr import compile_network
from repro.core.diagnosis import GeneralDiagnoser
from repro.core.faults import random_faults
from repro.core.set_builder import set_builder
from repro.networks.registry import compiled_network
from repro.parallel import ShardedSetBuilder, WorkerPool


@pytest.fixture(scope="module")
def q8():
    network, csr = compiled_network("hypercube", dimension=8)
    faults = random_faults(network, 8, seed=21)
    syndrome = ArraySyndrome.from_faults(csr, faults, seed=21)
    root = next(v for v in range(network.num_nodes) if v not in faults)
    return network, csr, faults, syndrome, root


class TestContract:
    def test_requires_array_syndrome_over_same_csr(self, q8):
        network, csr, faults, syndrome, root = q8
        builder = ShardedSetBuilder(network, num_shards=2)
        with pytest.raises(ValueError):
            builder.run(syndrome.to_table(), root)
        other_network, other_csr = compiled_network("hypercube", dimension=7)
        foreign = ArraySyndrome.from_faults(other_csr, frozenset(), seed=0)
        with pytest.raises(ValueError):
            builder.run(foreign, root)

    def test_rejects_out_of_range_roots(self, q8):
        network, _, _, syndrome, _ = q8
        builder = ShardedSetBuilder(network, num_shards=2)
        with pytest.raises(ValueError):
            builder.run(syndrome, -1)
        with pytest.raises(ValueError):
            builder.run(syndrome, network.num_nodes)

    def test_bare_csr_needs_explicit_diagnosability(self, q8):
        network, csr, faults, syndrome, root = q8
        builder = ShardedSetBuilder(csr, num_shards=2)
        with pytest.raises(ValueError):
            builder.run(syndrome, root)
        result = builder.run(syndrome, root, diagnosability=8)
        assert result.all_healthy

    def test_granularity_aligns_to_partition_classes(self, q8):
        network, _, _, _, _ = q8
        builder = ShardedSetBuilder(network, num_shards=4)
        block = network.partition_scheme(0).class_size
        assert builder.granularity == block
        for lo, _ in builder.ranges:
            assert lo % block == 0

    def test_lookup_accounting_credits_the_syndrome(self, q8):
        network, csr, faults, _, root = q8
        syndrome = ArraySyndrome.from_faults(csr, faults, seed=21)
        before = syndrome.lookups
        result = ShardedSetBuilder(network, num_shards=4).run(syndrome, root)
        assert syndrome.lookups - before == result.lookups > 0


class TestCertificate:
    def test_stop_on_certificate_truncates_like_the_reference(self, q8):
        network, csr, faults, syndrome, root = q8
        reference = set_builder(network, syndrome, root, stop_on_certificate=True)
        sharded = ShardedSetBuilder(network, num_shards=4).run(
            syndrome, root, stop_on_certificate=True
        )
        assert sharded.all_healthy == reference.all_healthy
        assert sharded.truncated == reference.truncated
        assert sharded.nodes == reference.nodes
        assert sharded.lookups == reference.lookups

    def test_member_mask_matches_nodes(self, q8):
        import numpy as np

        network, _, _, syndrome, root = q8
        result = ShardedSetBuilder(network, num_shards=2).run(syndrome, root)
        assert result.member_mask is not None
        assert set(np.flatnonzero(result.member_mask).tolist()) == result.nodes


class TestPooledRuns:
    def test_member_mask_survives_segment_teardown(self, q8):
        import numpy as np

        network, _, _, syndrome, root = q8
        with WorkerPool(max_workers=2) as pool:
            builder = ShardedSetBuilder(network, num_shards=4, pool=pool)
            result = builder.run(syndrome, root)
        # The per-run segments are gone; the mask must be an owned copy.
        assert set(np.flatnonzero(result.member_mask).tolist()) == result.nodes

    def test_builder_reuse_publishes_topology_once(self, q8):
        network, _, faults, _, root = q8
        csr = compile_network(network)
        with WorkerPool(max_workers=2) as pool:
            builder = ShardedSetBuilder(network, num_shards=4, pool=pool)
            for seed in (1, 2, 3):
                syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
                builder.run(syndrome, root)
            topology_segments = [
                name for name in pool._segments
                if name == builder._topology_handle.name
            ]
            assert len(topology_segments) == 1
            assert len(pool._segments) == 1  # per-run buffers were released


class TestDiagnoserIntegration:
    def test_diagnoser_validates_the_sharder(self, q8):
        network, _, _, _, _ = q8
        other_network, _ = compiled_network("hypercube", dimension=7)
        with pytest.raises(ValueError):
            GeneralDiagnoser(network, sharder=ShardedSetBuilder(other_network))
        with pytest.raises(ValueError):
            GeneralDiagnoser(
                network, compiled=False, sharder=ShardedSetBuilder(network)
            )

    def test_sharded_diagnosis_is_exact(self, q8):
        network, csr, faults, syndrome, _ = q8
        sharder = ShardedSetBuilder(network, num_shards=4)
        result = GeneralDiagnoser(network, sharder=sharder).diagnose(syndrome)
        assert result.faulty == faults
