"""Unit tests for shard-range computation and frontier routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.csr import compile_network
from repro.networks.registry import cached_network
from repro.parallel import shard_granularity, shard_ranges, split_frontier


class TestShardRanges:
    def test_ranges_partition_the_node_set(self):
        for n in (0, 1, 7, 128, 1000):
            for shards in (1, 2, 3, 4, 9):
                ranges = shard_ranges(n, shards)
                assert len(ranges) == shards
                assert ranges[0][0] == 0 and ranges[-1][1] == n
                for (_, hi), (lo2, _) in zip(ranges, ranges[1:]):
                    assert hi == lo2  # contiguous, disjoint
                assert sum(hi - lo for lo, hi in ranges) == n

    def test_alignment_to_granularity(self):
        ranges = shard_ranges(128, 4, granularity=16)
        for lo, hi in ranges:
            assert lo % 16 == 0
        assert ranges == [(0, 32), (32, 64), (64, 96), (96, 128)]

    def test_unaligned_tail_stays_covered(self):
        ranges = shard_ranges(100, 3, granularity=16)
        assert ranges[0][0] == 0 and ranges[-1][1] == 100
        assert sum(hi - lo for lo, hi in ranges) == 100
        for lo, _ in ranges:
            assert lo % 16 == 0  # every boundary except the forced end aligns

    def test_more_shards_than_blocks_yields_empty_tails(self):
        ranges = shard_ranges(32, 8, granularity=16)
        assert sum(1 for lo, hi in ranges if hi > lo) <= 2
        assert sum(hi - lo for lo, hi in ranges) == 32

    def test_balance_within_one_granule(self):
        ranges = shard_ranges(1024, 4, granularity=16)
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 16

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)


class TestGranularity:
    def test_dimensional_families_align_to_partition_classes(self):
        cube = cached_network("hypercube", dimension=8)
        assert shard_granularity(cube) == cube.partition_scheme(0).class_size

    def test_permutation_families_fall_back_to_single_nodes(self):
        star = cached_network("star", n=5)
        assert shard_granularity(star) == 1

    def test_bare_csr_falls_back_to_single_nodes(self):
        csr = compile_network(cached_network("hypercube", dimension=6))
        assert shard_granularity(csr) == 1

    def test_instances_without_partitions_fall_back(self):
        tiny = cached_network("augmented_kary_ncube", n=2, k=6)
        assert shard_granularity(tiny) == 1


class TestSplitFrontier:
    def test_slices_concatenate_in_order(self):
        frontier = np.array([0, 3, 17, 31, 32, 40, 63, 64, 99], dtype=np.int64)
        ranges = [(0, 32), (32, 64), (64, 100)]
        parts = split_frontier(frontier, ranges)
        assert len(parts) == 3
        assert np.concatenate(parts).tolist() == frontier.tolist()
        for part, (lo, hi) in zip(parts, ranges):
            assert all(lo <= v < hi for v in part.tolist())

    def test_empty_shards_produce_empty_slices(self):
        frontier = np.array([70, 71], dtype=np.int64)
        parts = split_frontier(frontier, [(0, 32), (32, 64), (64, 100)])
        assert [len(p) for p in parts] == [0, 0, 2]
