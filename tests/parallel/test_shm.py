"""Shared-memory lifecycle tests: zero-copy attachment, strict cleanup.

The guarantee under test: **no leaked segments** — whatever happens to the
pool (orderly shutdown, a killed worker, an owner that simply forgets), every
published segment is unlinked by the time its owner is gone, and a worker
exiting never destroys a segment it merely attached.
"""

from __future__ import annotations

import gc
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.backend.csr import compile_network
from repro.networks.registry import cached_network
from repro.parallel import (
    WorkerPool,
    attach_buffer,
    attach_topology,
    publish_buffer,
    publish_topology,
    worker_health,
)


def _segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


@pytest.fixture
def q6_csr():
    return compile_network(cached_network("hypercube", dimension=6))


class TestTopologyRoundtrip:
    def test_attached_topology_is_identical_and_zero_copy(self, q6_csr):
        handle, segment = publish_topology(q6_csr)
        try:
            attached = attach_topology(handle)
            assert attached.num_nodes == q6_csr.num_nodes
            assert attached.num_pairs == q6_csr.num_pairs
            assert np.array_equal(attached.indptr, q6_csr.indptr)
            assert np.array_equal(attached.indices, q6_csr.indices)
            assert np.array_equal(attached.pair_indptr, q6_csr.pair_indptr)
            # Zero-copy: the arrays view the mapped segment, not fresh heap.
            assert attached.indptr.base is not None
            assert attached._shm is not None
            assert attached.rows == q6_csr.rows
        finally:
            segment.close()

    def test_pair_members_ship_zero_copy(self, q6_csr):
        from repro.backend.csr import pair_build_count

        handle, segment = publish_topology(q6_csr, include_pair_members=True)
        try:
            assert handle.num_pairs == q6_csr.num_pairs
            attached = attach_topology(handle)
            builds_before = pair_build_count()
            for shipped, local in zip(attached.pair_members(), q6_csr.pair_members()):
                assert np.array_equal(shipped, local)
                assert shipped.base is not None  # a view over the mapping
            # The shipped arrays satisfied pair_members() without a build.
            assert pair_build_count() == builds_before
        finally:
            segment.close()

    def test_plain_handles_still_derive_pair_members_locally(self, q6_csr):
        handle, segment = publish_topology(q6_csr)
        try:
            assert handle.num_pairs == 0
            attached = attach_topology(handle)
            for shipped, local in zip(attached.pair_members(), q6_csr.pair_members()):
                assert np.array_equal(shipped, local)
        finally:
            segment.close()

    def test_buffer_roundtrip_and_writability(self):
        payload = bytes(range(100))
        handle, segment = publish_buffer(payload)
        try:
            view, mapping = attach_buffer(handle)
            assert view.tobytes() == payload
            view[0] = 255  # shared writes are visible through other mappings
            again, _ = attach_buffer(handle)
            assert again[0] == 255
        finally:
            segment.close()


class TestOwnership:
    def test_close_unlinks_and_is_idempotent(self, q6_csr):
        handle, segment = publish_topology(q6_csr)
        assert _segment_exists(handle.name)
        segment.close()
        assert segment.closed
        assert not _segment_exists(handle.name)
        segment.close()  # second close is a no-op

    def test_garbage_collection_reclaims_forgotten_segments(self, q6_csr):
        handle, segment = publish_topology(q6_csr)
        name = handle.name
        assert _segment_exists(name)
        del segment
        gc.collect()
        assert not _segment_exists(name)


class TestPoolLifecycle:
    def test_shutdown_unlinks_everything(self, q6_csr):
        pool = WorkerPool(max_workers=2)
        names = []
        handle = pool.publish_topology(q6_csr)
        names.append(handle.name)
        buffer_handle = pool.publish_buffer(b"\x01" * 64)
        names.append(buffer_handle.name)
        _, view = pool.allocate_buffer(32)
        # worker really attaches before we tear down
        assert pool.health()[0]["pid"] != os.getpid()
        view = None  # drop the owner-side view so the segment can unmap
        pool.shutdown()
        for name in names:
            assert not _segment_exists(name)

    def test_release_drops_single_segments_early(self):
        with WorkerPool(max_workers=1) as pool:
            handle = pool.publish_buffer(b"xyz")
            assert _segment_exists(handle.name)
            pool.release(handle)
            assert not _segment_exists(handle.name)
            pool.release(handle)  # idempotent

    def test_worker_exit_does_not_unlink_attached_segments(self, q6_csr):
        """The resource-tracker trap: attachers must never destroy segments."""
        with WorkerPool(max_workers=1) as pool:
            handle = pool.publish_topology(q6_csr)
            pool.submit(_attach_in_worker, handle).result()
            # Recycle the worker so its exit path runs while the segment lives.
            pool._executor.shutdown(wait=True)
            pool._executor = None
            assert _segment_exists(handle.name)
            attached = attach_topology(handle)
            assert attached.num_nodes == q6_csr.num_nodes

    def test_killed_worker_leaves_no_leaked_segments(self, q6_csr):
        """Crash path: SIGKILL a worker mid-pool, then clean up normally."""
        pool = WorkerPool(max_workers=2)
        handle = pool.publish_topology(q6_csr)
        buffer_handle = pool.publish_buffer(b"\x00" * 128)
        victims = [report["pid"] for report in pool.health()]
        assert victims
        victim = next(
            process for process in pool.executor._processes.values()
            if process.pid == victims[0]
        )
        os.kill(victims[0], signal.SIGKILL)
        # Deadline-bounded handshake on the actual death, not a fixed nap.
        victim.join(timeout=30)
        assert not victim.is_alive()
        pool.shutdown()
        assert not _segment_exists(handle.name)
        assert not _segment_exists(buffer_handle.name)

    def test_publish_topology_is_memoized_per_object(self, q6_csr):
        with WorkerPool(max_workers=1) as pool:
            first = pool.publish_topology(q6_csr)
            second = pool.publish_topology(q6_csr)
            assert first == second
            assert len(pool._segments) == 1

    def test_health_reports_cover_the_pool(self):
        with WorkerPool(max_workers=2) as pool:
            reports = pool.health()
            assert 1 <= len(reports) <= 2
            for report in reports:
                assert report["pid"] != os.getpid()
                assert report["compiles"] >= 0


def _attach_in_worker(handle):
    from repro.parallel.pool import worker_topology

    return worker_topology(handle).num_nodes


class TestWorkerHealth:
    def test_local_invocation_shape(self):
        report = worker_health()
        assert set(report) == {"pid", "topologies_attached", "buffers_attached",
                               "compiles", "pair_builds"}
        assert report["pid"] == os.getpid()


class TestAttachRegistry:
    def test_detach_releases_the_registry_pin(self, q6_csr):
        from repro.parallel.shm import _ATTACHED, attach, detach

        handle, segment = publish_topology(q6_csr)
        try:
            before = len(_ATTACHED)
            mapping = attach(handle.name)
            assert len(_ATTACHED) == before + 1
            detach(mapping)
            assert len(_ATTACHED) == before
            detach(mapping)  # idempotent: already unpinned
            assert len(_ATTACHED) == before
        finally:
            segment.close()

    def test_worker_buffer_cache_eviction_stays_bounded(self):
        """A long-lived worker must not accumulate unbounded attachments."""
        from repro.parallel import pool as pool_mod
        from repro.parallel.shm import _ATTACHED

        segments = []
        try:
            before = len(_ATTACHED)
            for i in range(pool_mod._BUFFER_CACHE_LIMIT + 5):
                handle, segment = publish_buffer(bytes([i]) * 16)
                segments.append(segment)
                pool_mod.worker_buffer(handle)
            assert len(pool_mod._BUFFER_CACHE) == pool_mod._BUFFER_CACHE_LIMIT
            assert len(_ATTACHED) - before <= pool_mod._BUFFER_CACHE_LIMIT
        finally:
            pool_mod._BUFFER_CACHE.clear()
            for segment in segments:
                segment.close()


class TestAllocateBufferOwnership:
    def test_zero_fill_failure_does_not_leak_the_segment(self, monkeypatch):
        """Regression: ``allocate_buffer`` zero-filled the segment *between*
        create and the OwnedSegment wrap, so an exception in the fill leaked
        an ownerless segment in /dev/shm.  The wrap must come first: then the
        finalize guard reclaims the segment on any exit path."""
        from repro.parallel import shm as shm_mod

        real_cls = shared_memory.SharedMemory
        names: list[str] = []

        class ExplodingSegment(real_cls):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                names.append(self.name)

            @property
            def buf(self):
                raise RuntimeError("simulated fill failure")

        monkeypatch.setattr(
            shm_mod.shared_memory, "SharedMemory", ExplodingSegment
        )
        try:
            shm_mod.allocate_buffer(64)
        except RuntimeError:
            pass
        else:  # pragma: no cover - the patched segment always raises
            pytest.fail("patched segment should have raised")
        gc.collect()  # drop the half-constructed OwnedSegment -> finalize
        assert names, "allocate_buffer never created a segment"
        assert not _segment_exists(names[0]), (
            "segment leaked: OwnedSegment must wrap the segment before any "
            "statement that can raise"
        )
