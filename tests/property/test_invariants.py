"""Property-based tests (hypothesis) for the core invariants.

These cover the paper's central guarantees over randomly drawn fault sets,
faulty-tester behaviours and start nodes:

* MM-model semantics of generated syndromes;
* soundness of the ``Set_Builder`` contributor certificate;
* Theorem 1 (the diagnosed set equals the injected fault set) on hypercubes,
  crossed cubes and star graphs;
* agreement of every diagnoser with the injected fault set;
* structural invariants of the encodings and partitions.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import ExtendedStarDiagnoser, YangCycleDiagnoser
from repro.core.diagnosis import GeneralDiagnoser
from repro.core.set_builder import set_builder
from repro.core.syndrome import FaultyTesterBehavior, LazySyndrome
from repro.core.verification import assert_mm_semantics, is_consistent_fault_set
from repro.networks import CrossedCube, Hypercube, StarGraph

Q7 = Hypercube(7)
Q8 = Hypercube(8)
CQ7 = CrossedCube(7)
S5 = StarGraph(5)

behaviors = st.sampled_from(FaultyTesterBehavior.NAMES)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fault_sets(network, max_size):
    return st.sets(
        st.integers(min_value=0, max_value=network.num_nodes - 1),
        min_size=0,
        max_size=max_size,
    )


class TestSyndromeInvariants:
    @given(faults=fault_sets(Q7, 7), behavior=behaviors, seed=seeds)
    @settings(max_examples=30, **COMMON_SETTINGS)
    def test_generated_syndrome_obeys_mm_semantics(self, faults, behavior, seed):
        syndrome = LazySyndrome(Q7, faults, behavior=behavior, seed=seed)
        assert_mm_semantics(Q7, syndrome, faults)

    @given(faults=fault_sets(Q7, 7), behavior=behaviors, seed=seeds)
    @settings(max_examples=30, **COMMON_SETTINGS)
    def test_true_fault_set_always_consistent(self, faults, behavior, seed):
        syndrome = LazySyndrome(Q7, faults, behavior=behavior, seed=seed)
        assert is_consistent_fault_set(Q7, syndrome, faults)

    @given(faults=fault_sets(S5, 4), behavior=behaviors, seed=seeds)
    @settings(max_examples=20, **COMMON_SETTINGS)
    def test_star_graph_syndromes(self, faults, behavior, seed):
        syndrome = LazySyndrome(S5, faults, behavior=behavior, seed=seed)
        assert_mm_semantics(S5, syndrome, faults)


class TestSetBuilderInvariants:
    @given(
        faults=fault_sets(Q7, 12),  # deliberately allowed to exceed δ
        behavior=behaviors,
        seed=seeds,
        root=st.integers(min_value=0, max_value=Q7.num_nodes - 1),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_certificate_soundness_even_beyond_delta_faults(self, faults, behavior, seed, root):
        """If the certificate fires with bound δ = 7 and the actual fault set
        has size ≤ 7, the grown set contains no faulty node."""
        syndrome = LazySyndrome(Q7, faults, behavior=behavior, seed=seed)
        result = set_builder(Q7, syndrome, root, diagnosability=7)
        if len(faults) <= 7 and result.all_healthy:
            assert result.nodes.isdisjoint(faults)

    @given(faults=fault_sets(Q7, 7), behavior=behaviors, seed=seeds)
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_healthy_root_grows_only_healthy_nodes(self, faults, behavior, seed):
        root = next(v for v in range(Q7.num_nodes) if v not in faults)
        syndrome = LazySyndrome(Q7, faults, behavior=behavior, seed=seed)
        result = set_builder(Q7, syndrome, root, diagnosability=7)
        assert result.nodes.isdisjoint(faults)

    @given(faults=fault_sets(Q7, 7), seed=seeds)
    @settings(max_examples=30, **COMMON_SETTINGS)
    def test_tree_edges_are_graph_edges(self, faults, seed):
        root = next(v for v in range(Q7.num_nodes) if v not in faults)
        syndrome = LazySyndrome(Q7, faults, seed=seed)
        result = set_builder(Q7, syndrome, root, diagnosability=7)
        for parent, child in result.tree_edges():
            assert Q7.has_edge(parent, child)
        assert set(result.parent).issubset(result.nodes)


class TestTheorem1Property:
    @given(faults=fault_sets(Q8, 8), behavior=behaviors, seed=seeds)
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_hypercube_diagnosis_recovers_fault_set(self, faults, behavior, seed):
        syndrome = LazySyndrome(Q8, faults, behavior=behavior, seed=seed)
        result = GeneralDiagnoser(Q8).diagnose(syndrome)
        assert result.faulty == frozenset(faults)

    @given(faults=fault_sets(CQ7, 7), behavior=behaviors, seed=seeds)
    @settings(max_examples=25, **COMMON_SETTINGS)
    def test_crossed_cube_diagnosis_recovers_fault_set(self, faults, behavior, seed):
        syndrome = LazySyndrome(CQ7, faults, behavior=behavior, seed=seed)
        result = GeneralDiagnoser(CQ7).diagnose(syndrome)
        assert result.faulty == frozenset(faults)

    @given(faults=fault_sets(S5, 4), behavior=behaviors, seed=seeds)
    @settings(max_examples=25, **COMMON_SETTINGS)
    def test_star_graph_diagnosis_recovers_fault_set(self, faults, behavior, seed):
        syndrome = LazySyndrome(S5, faults, behavior=behavior, seed=seed)
        result = GeneralDiagnoser(S5).diagnose(syndrome)
        assert result.faulty == frozenset(faults)


class TestAlgorithmsAgree:
    @given(faults=fault_sets(Q7, 7), behavior=behaviors, seed=seeds)
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_all_diagnosers_recover_the_fault_set(self, faults, behavior, seed):
        syndrome = LazySyndrome(Q7, faults, behavior=behavior, seed=seed)
        stewart = GeneralDiagnoser(Q7).diagnose(syndrome).faulty
        yang = YangCycleDiagnoser(Q7).diagnose(
            LazySyndrome(Q7, faults, behavior=behavior, seed=seed)
        ).faulty
        extended = ExtendedStarDiagnoser(Q7).diagnose(
            LazySyndrome(Q7, faults, behavior=behavior, seed=seed)
        ).faulty
        assert stewart == yang == extended == frozenset(faults)


class TestEncodingInvariants:
    @given(v=st.integers(min_value=0, max_value=Q8.num_nodes - 1))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_hypercube_label_round_trip(self, v):
        assert Q8.node_index(Q8.node_label(v)) == v

    @given(v=st.integers(min_value=0, max_value=S5.num_nodes - 1))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_star_label_round_trip(self, v):
        assert S5.node_index(S5.node_label(v)) == v

    @given(v=st.integers(min_value=0, max_value=Q8.num_nodes - 1))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_hypercube_neighbors_symmetric(self, v):
        for w in Q8.neighbors(v):
            assert v in Q8.neighbors(w)

    @given(v=st.integers(min_value=0, max_value=CQ7.num_nodes - 1))
    @settings(max_examples=50, **COMMON_SETTINGS)
    def test_crossed_cube_neighbors_symmetric_and_distinct(self, v):
        neighbors = list(CQ7.neighbors(v))
        assert len(neighbors) == len(set(neighbors))
        for w in neighbors:
            assert v in CQ7.neighbors(w)
