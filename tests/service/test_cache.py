"""LRU cache semantics: bounding, recency, counters."""

from __future__ import annotations

import pytest

from repro.service.cache import LRUCache


class TestLookups:
    def test_get_or_create_runs_factory_once(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)

    def test_get_returns_default_on_miss(self):
        cache = LRUCache(2)
        assert cache.get("absent") is None
        assert cache.get("absent", 7) == 7
        assert cache.stats().misses == 2

    def test_contains_does_not_touch_counters_or_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache and "c" not in cache
        assert cache.stats().hits == 0 and cache.stats().misses == 0
        cache.put("c", 3)  # "a" is still the LRU entry: contains didn't refresh
        assert "a" not in cache


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" becomes least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_capacity_zero_retains_nothing(self):
        cache = LRUCache(0)
        calls = []
        cache.get_or_create("k", lambda: calls.append(1) or "v")
        cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert len(calls) == 2  # every lookup misses; the factory reruns
        assert len(cache) == 0
        assert cache.stats().misses == 2

    def test_capacity_zero_still_fires_on_evict(self):
        """Resource owners must see every value let go, even never-stored ones."""
        dropped = []
        cache = LRUCache(0, on_evict=lambda key, value: dropped.append(value))
        cache.put("k", "v")
        assert dropped == ["v"]
        assert cache.stats().evictions == 1

    def test_resize_shrinks_immediately(self):
        cache = LRUCache(4)
        for key in "abcd":
            cache.put(key, key)
        cache.resize(2)
        assert len(cache) == 2
        assert list(cache) == ["c", "d"]  # least-recent evicted first
        assert cache.stats().evictions == 2
        cache.resize(0)
        assert len(cache) == 0
        assert cache.stats().evictions == 4

    def test_on_evict_fires_for_capacity_evictions_only(self):
        evicted = []
        cache = LRUCache(2, on_evict=lambda key, value: evicted.append((key, value)))
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert evicted == [("a", 1)]
        cache.resize(1)
        assert evicted == [("a", 1), ("b", 2)]
        cache.resize(0)
        assert evicted == [("a", 1), ("b", 2), ("c", 3)]
        cache.resize(2)
        cache.put("d", 4)
        cache.clear()  # clear never fires the hook
        assert evicted == [("a", 1), ("b", 2), ("c", 3)]

    def test_replacing_a_key_fires_on_evict_for_the_displaced_value(self):
        """Regression: a replaced entry must release what it pins (a pooled
        topology's shm segment), exactly like a capacity eviction."""
        evicted = []
        cache = LRUCache(4, on_evict=lambda key, value: evicted.append((key, value)))
        cache.put("k", "old")
        cache.put("k", "new")
        assert evicted == [("k", "old")]
        assert cache.stats().evictions == 1
        assert cache.get("k") == "new"
        assert len(cache) == 1

    def test_replacing_with_the_same_object_is_a_refresh_not_an_eviction(self):
        evicted = []
        value = object()
        cache = LRUCache(4, on_evict=lambda key, val: evicted.append(val))
        cache.put("k", value)
        cache.put("k", value)
        assert evicted == []
        assert cache.stats().evictions == 0

    def test_replacement_handles_stored_none(self):
        evicted = []
        cache = LRUCache(4, on_evict=lambda key, val: evicted.append(val))
        cache.put("k", None)
        cache.put("k", "value")
        assert evicted == [None]
        assert cache.stats().evictions == 1

    def test_replacement_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh: "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1


class TestStats:
    def test_hit_rate(self):
        cache = LRUCache(2)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats().hit_rate == 0.5
        assert cache.stats().as_dict()["hit_rate"] == 0.5

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)
        with pytest.raises(ValueError):
            LRUCache(2).resize(-1)
