"""``/dashboard`` rendering: well-formed HTML, numbers faithful to stats().

The page is pure presentation over the ``stats()`` snapshot, so the suite
drives a real service (multi-tenant traffic, store, fabric counters),
renders, and then checks the page against the *same snapshot*: every
per-tenant counter, queue histogram and cache/store number shown must be
the one ``stats()`` reported.  Well-formedness is checked with a strict
tag-balance parser — a regression here is an operator console that
silently renders garbage.
"""

from __future__ import annotations

import asyncio
import html.parser

from repro.service import (
    DiagnosisRequest,
    DiagnosisService,
    ResultStore,
    render_dashboard,
)

_VOID_TAGS = {"meta", "br", "hr", "img", "link", "input"}


class _StrictParser(html.parser.HTMLParser):
    """Fails on unbalanced tags; collects table cell text per section."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []
        self.cells: list[str] = []
        self.headings: list[str] = []
        self._text_target: list[str] | None = None

    def handle_starttag(self, tag, attrs):
        if tag in _VOID_TAGS:
            return
        self.stack.append(tag)
        if tag in ("td", "th"):
            self._text_target = self.cells
        elif tag in ("h1", "h2"):
            self._text_target = self.headings

    def handle_endtag(self, tag):
        if tag in _VOID_TAGS:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(
                f"closing </{tag}> but open stack is {self.stack!r}"
            )
        else:
            self.stack.pop()
        if tag in ("td", "th", "h1", "h2"):
            self._text_target = None

    def handle_data(self, data):
        if self._text_target is not None and data.strip():
            self._text_target.append(data.strip())


def _parse(page: str) -> _StrictParser:
    parser = _StrictParser()
    parser.feed(page)
    parser.close()
    assert parser.errors == [], parser.errors
    assert parser.stack == [], f"unclosed tags: {parser.stack}"
    return parser


def _populated_stats() -> dict:
    """A real snapshot: two tenants, repeats, a store, a bounded cache."""

    async def drive():
        service = DiagnosisService(
            store=ResultStore(), batch_delay=0.005,
            topology_cache_capacity=2, tenant_weights={"gold": 3},
        )
        async with service:
            requests = [
                DiagnosisRequest.seeded(
                    "hypercube", {"dimension": 5}, seed=seed, tenant=tenant
                )
                for seed in range(3)
                for tenant in ("gold", "bronze")
            ]
            await service.submit_many(requests + requests[:2])
            return service.stats()

    return asyncio.run(drive())


class TestRendering:
    def test_renders_well_formed_html_over_a_real_snapshot(self):
        stats = _populated_stats()
        page = render_dashboard(stats)
        parser = _parse(page)
        assert page.startswith("<!DOCTYPE html>")
        assert "repro diagnosis service" in parser.headings
        assert "tenants" in parser.headings

    def test_tenant_and_service_numbers_match_stats(self):
        stats = _populated_stats()
        parser = _parse(render_dashboard(stats))
        cells = parser.cells
        # Global counters: every (name, value) the service section lists
        # must appear as adjacent cells with the snapshot's exact value.
        for name in ("requests", "computed", "store_hits",
                     "coalesced_duplicates", "rejected", "errors", "batches"):
            position = cells.index(name)
            assert cells[position + 1] == str(stats[name]), name
        # Per-tenant rows, column for column.
        columns = ("admitted", "rejected", "served", "computed",
                   "store_hits", "coalesced", "errors")
        for tenant, row in stats["tenants"].items():
            position = cells.index(tenant)
            rendered = cells[position + 1:position + 1 + len(columns)]
            assert rendered == [str(row.get(c, 0)) for c in columns], tenant

    def test_queue_histograms_match_stats(self):
        stats = _populated_stats()
        parser = _parse(render_dashboard(stats))
        cells = parser.cells
        for section in ("latency_ms", "queue_wait_ms", "batch_size",
                        "queue_depth"):
            summary = stats[section]
            if not summary or summary.get("count", 0) == 0:
                continue
            # The count column's value must be the snapshot's.
            assert str(summary["count"]) in cells, section

    def test_topology_cache_section_renders_from_a_real_snapshot(self):
        """Regression: the snapshot files the cache under "topology_cache";
        the dashboard used to look up "cache" only and silently dropped the
        whole section."""
        stats = _populated_stats()
        assert "topology_cache" in stats  # the snapshot's actual key
        parser = _parse(render_dashboard(stats))
        assert "topology cache" in parser.headings
        cells = parser.cells
        for name, value in stats["topology_cache"].items():
            if isinstance(value, (int, float)):
                position = cells.index(name)
                assert cells[position + 1] == str(value), name

    def test_store_section_matches_stats(self):
        stats = _populated_stats()
        parser = _parse(render_dashboard(stats))
        assert "result store" in parser.headings
        position = parser.cells.index("results")
        assert parser.cells[position + 1] == str(stats["store"]["results"])

    def test_http_section_renders_when_present(self):
        stats = {"service": _populated_stats(),
                 "http": {"requests": 41, "shed": 2, "connections_total": 7}}
        parser = _parse(render_dashboard(stats))
        assert "http frontend" in parser.headings
        position = parser.cells.index("requests")
        # The http table renders its own "requests" counter too; find the
        # one adjacent to 41 specifically.
        assert "41" in parser.cells
        assert "7" in parser.cells

    def test_worker_and_fabric_section(self):
        stats = _populated_stats()
        stats["workers"] = {
            "w1": {"dispatched": 9, "completed": 8, "retried": 1,
                   "requeued": 2, "evictions": 0},
        }
        stats["fabric"] = {
            "address": "127.0.0.1:5", "workers_live": 1,
            "outstanding_leases": 0, "duplicate_completions": 3,
            "live_workers": ["w1"],
        }
        parser = _parse(render_dashboard(stats))
        assert "fabric workers" in parser.headings
        cells = parser.cells
        position = cells.index("w1")
        assert cells[position + 1:position + 6] == ["9", "8", "1", "2", "0"]
        # Numeric fabric counters render; strings and lists are left out.
        dup = cells.index("duplicate_completions")
        assert cells[dup + 1] == "3"
        assert "address" not in cells
        assert "live_workers" not in cells

    def test_empty_stats_still_render(self):
        parser = _parse(render_dashboard({}))
        assert "no tenants seen yet" in render_dashboard({})
        assert parser.stack == []

    def test_title_and_refresh_are_escaped_and_applied(self):
        page = render_dashboard({}, title="<evil> & co", refresh_seconds=9)
        assert "<evil>" not in page
        assert "&lt;evil&gt; &amp; co" in page
        assert 'content="9"' in page
