"""TenantQueues: deficit round robin vs a reference model, and its laws.

The property suite drives random per-tenant arrival/take sequences through
:class:`TenantQueues` and checks the invariants the serving layer builds on:

* conservation — everything pushed is taken exactly once, FIFO per tenant;
* determinism — the same operation sequence replays to identical takes;
* weighted share — over a saturated window, each backlogged tenant's served
  share lands within one DRR rotation of its weight share;
* starvation freedom — no backlogged tenant waits more than one full
  rotation's worth of service.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import TenantQueues


def drain(queues: TenantQueues, batch: int) -> list:
    taken = []
    while queues:
        taken.extend(queues.take(batch))
    return taken


class TestBasics:
    def test_empty(self):
        queues = TenantQueues()
        assert len(queues) == 0
        assert not queues
        assert queues.take(8) == []
        assert queues.backlog() == {}
        assert queues.tenants() == []

    def test_single_tenant_fifo(self):
        queues = TenantQueues()
        for item in range(5):
            queues.push("a", item)
        assert queues.pending("a") == 5
        assert drain(queues, 2) == [0, 1, 2, 3, 4]
        assert queues.pending("a") == 0

    def test_take_zero_or_negative_limit(self):
        queues = TenantQueues()
        queues.push("a", 1)
        assert queues.take(0) == []
        assert queues.take(-3) == []
        assert len(queues) == 1

    def test_round_robin_between_equal_tenants(self):
        queues = TenantQueues()
        for item in range(3):
            queues.push("a", ("a", item))
            queues.push("b", ("b", item))
        assert drain(queues, 100) == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2),
        ]

    def test_weights_bias_the_rotation(self):
        queues = TenantQueues(weights={"big": 3})
        for item in range(6):
            queues.push("big", ("big", item))
            queues.push("small", ("small", item))
        taken = queues.take(8)
        # One full rotation: big drains 3, small drains 1, big drains 3,
        # small drains 1.
        assert taken == [
            ("big", 0), ("big", 1), ("big", 2), ("small", 0),
            ("big", 3), ("big", 4), ("big", 5), ("small", 1),
        ]

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            TenantQueues(weights={"a": 0})
        with pytest.raises(ValueError):
            TenantQueues(weights={"a": -1})
        with pytest.raises(ValueError):
            TenantQueues(weights={"a": True})
        with pytest.raises(ValueError):
            TenantQueues(weights={"a": 1.5})
        with pytest.raises(ValueError):
            TenantQueues(default_weight=0)

    def test_drained_tenant_leaves_the_rotation(self):
        queues = TenantQueues()
        queues.push("a", 1)
        queues.take(1)
        assert queues.tenants() == []
        # Re-arrival re-enters at the back with zero deficit.
        queues.push("b", 2)
        queues.push("a", 3)
        assert queues.tenants() == ["b", "a"]
        assert queues.take(2) == [2, 3]


class TestDeficitCarry:
    def test_interrupted_visit_resumes_without_recredit(self):
        """A take() cut short mid-visit must not re-credit on the next call.

        With weight 4, a batch limit of 2 leaves 2 unspent deficit; the next
        take must spend *that*, not add another 4 — otherwise a heavy tenant
        bursts past its share whenever batches are smaller than weights.
        """
        queues = TenantQueues(weights={"a": 4})
        for item in range(8):
            queues.push("a", ("a", item))
        for item in range(4):
            queues.push("b", ("b", item))
        assert queues.take(2) == [("a", 0), ("a", 1)]  # visit interrupted
        assert queues.take(2) == [("a", 2), ("a", 3)]  # remainder, no credit
        assert queues.take(2) == [("b", 0), ("a", 4)]  # rotation moved on

    def test_idle_tenant_forfeits_deficit(self):
        queues = TenantQueues(weights={"a": 5})
        queues.push("a", 1)
        queues.push("b", 2)
        assert queues.take(10) == [1, 2]  # a drains with 4 deficit unspent
        # Re-arrival must start from zero deficit: no banked burst.
        for item in range(4):
            queues.push("a", ("a", item))
            queues.push("b", ("b", item))
        taken = queues.take(6)
        assert taken[:5] == [
            ("a", 0), ("a", 1), ("a", 2), ("a", 3), ("b", 0),
        ]


class ReferenceDRR:
    """Independent deficit-round-robin model (dicts and lists, no deques)."""

    def __init__(self, weights=None, default_weight=1):
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self.queues: dict[str, list] = {}
        self.rotation: list[str] = []
        self.deficits: dict[str, int] = {}

    def push(self, tenant, item):
        if tenant not in self.queues:
            self.queues[tenant] = []
            self.rotation.append(tenant)
            self.deficits[tenant] = 0
        self.queues[tenant].append(item)

    def take(self, limit):
        taken = []
        while self.rotation and len(taken) < limit:
            tenant = self.rotation[0]
            if self.deficits[tenant] == 0:
                self.deficits[tenant] = self.weights.get(
                    tenant, self.default_weight
                )
            while (self.queues[tenant] and self.deficits[tenant] > 0
                   and len(taken) < limit):
                taken.append(self.queues[tenant].pop(0))
                self.deficits[tenant] -= 1
            if not self.queues[tenant]:
                del self.queues[tenant]
                del self.deficits[tenant]
                self.rotation.pop(0)
            elif self.deficits[tenant] == 0:
                self.rotation.append(self.rotation.pop(0))
        return taken


@pytest.mark.parametrize("seed", range(8))
def test_random_sequences_match_reference(seed):
    rng = np.random.default_rng(seed)
    tenants = [f"t{i}" for i in range(int(rng.integers(1, 6)))]
    weights = {
        tenant: int(rng.integers(1, 5))
        for tenant in tenants
        if rng.random() < 0.5
    }
    real = TenantQueues(weights=weights)
    model = ReferenceDRR(weights=weights)
    counter = 0
    for _ in range(400):
        if rng.random() < 0.6 or not real:
            tenant = tenants[int(rng.integers(len(tenants)))]
            real.push(tenant, counter)
            model.push(tenant, counter)
            counter += 1
        else:
            limit = int(rng.integers(1, 7))
            assert real.take(limit) == model.take(limit)
        assert len(real) == sum(len(q) for q in model.queues.values())
        assert real.tenants() == model.rotation
    # Drain and compare the tail too.
    while real:
        assert real.take(3) == model.take(3)
    assert model.take(3) == []


@pytest.mark.parametrize("seed", range(4))
def test_conservation_and_per_tenant_fifo(seed):
    rng = np.random.default_rng(100 + seed)
    queues = TenantQueues()
    pushed: dict[str, list] = {}
    for index in range(300):
        tenant = f"t{int(rng.integers(4))}"
        queues.push(tenant, (tenant, index))
        pushed.setdefault(tenant, []).append((tenant, index))
    taken = drain(queues, int(rng.integers(1, 9)))
    assert len(taken) == 300
    for tenant, items in pushed.items():
        assert [item for item in taken if item[0] == tenant] == items


def test_replay_is_deterministic():
    def run():
        rng = np.random.default_rng(42)
        queues = TenantQueues(weights={"t0": 3})
        log = []
        for index in range(200):
            if rng.random() < 0.55 or not queues:
                tenant = f"t{int(rng.integers(3))}"
                queues.push(tenant, index)
            else:
                log.append(tuple(queues.take(int(rng.integers(1, 5)))))
        log.append(tuple(drain(queues, 4)))
        return log

    assert run() == run()


@pytest.mark.parametrize("weights,expected_ratio", [
    ({"heavy": 3, "light": 1}, 3.0),
    ({"heavy": 5, "light": 2}, 2.5),
])
def test_saturated_share_tracks_weight_ratio(weights, expected_ratio):
    """Over a backlogged window, served share ~ weight share.

    Both tenants stay saturated for the whole window, so after any whole
    number of rotations heavy:light equals the weight ratio exactly; mid-
    rotation the counts are off by at most one visit's worth (one weight).
    """
    queues = TenantQueues(weights=weights)
    for item in range(600):
        queues.push("heavy", ("heavy", item))
        queues.push("light", ("light", item))
    served = {"heavy": 0, "light": 0}
    for _ in range(60):
        for tenant, _item in queues.take(5):
            served[tenant] += 1
    assert served["heavy"] + served["light"] == 300
    # Within one rotation of the weight split at every prefix; at 300 items
    # the absolute error bound of one visit is |heavy_weight|.
    ideal_heavy = 300 * expected_ratio / (expected_ratio + 1)
    assert abs(served["heavy"] - ideal_heavy) <= max(weights.values())


def test_no_starvation_under_hot_backlog():
    """A cold tenant's lone request is served within one rotation."""
    queues = TenantQueues(weights={"hot": 4})
    for item in range(100):
        queues.push("hot", ("hot", item))
    queues.push("cold", ("cold", 0))
    first_batches = queues.take(4) + queues.take(4)
    assert ("cold", 0) in first_batches
