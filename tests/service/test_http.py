"""HTTP/JSON frontend: endpoints, framing, shedding, drain, wire parity."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    BackgroundHttpServer,
    DiagnosisRequest,
    DiagnosisService,
    HttpClient,
    HttpFrontend,
    ResultStore,
    parse_http_target,
    parse_metrics_text,
)
from repro.service.executor import run_direct

Q6 = ("hypercube", {"dimension": 6})


def _request(seed: int = 0, instance=Q6, **kwargs) -> DiagnosisRequest:
    return DiagnosisRequest.seeded(*instance, seed=seed, **kwargs)


def _run(coro):
    return asyncio.run(coro)


async def _with_frontend(inner, **service_kwargs):
    service = DiagnosisService(**service_kwargs)
    async with HttpFrontend(service) as frontend:
        async with HttpClient(frontend.host, frontend.port) as client:
            result = await inner(client, frontend, service)
    await service.close()
    return result


class TestEndpoints:
    def test_healthz(self):
        async def inner(client, frontend, service):
            return await client.healthz()

        body = _run(_with_frontend(inner))
        assert body["ok"] is True
        assert body["pending"] == 0

    def test_diagnose_single_matches_direct(self):
        request = _request(3)

        async def inner(client, frontend, service):
            return await client.diagnose(request)

        status, response = _run(_with_frontend(inner))
        direct = run_direct(request)
        assert status == 200
        assert response.faulty == direct.faulty
        assert response.healthy_root == direct.healthy_root
        assert response.lookups == direct.lookups
        assert response.syndrome_digest == direct.syndrome_digest

    def test_diagnose_batch_body(self):
        requests = [_request(seed) for seed in range(3)]

        async def inner(client, frontend, service):
            status, payload = await client.request(
                "POST", "/diagnose",
                {"requests": [request.to_wire() for request in requests]},
            )
            return status, payload

        status, payload = _run(_with_frontend(inner))
        assert status == 200
        assert len(payload["responses"]) == 3
        for request, entry in zip(requests, payload["responses"]):
            assert tuple(entry["faulty"]) == run_direct(request).faulty

    def test_explicit_syndrome_over_the_wire(self, q5):
        from repro.backend.array_syndrome import ArraySyndrome
        from repro.backend.csr import compile_network
        from repro.core.faults import random_faults

        faults = random_faults(q5, 3, seed=4)
        syndrome = ArraySyndrome.from_faults(compile_network(q5), faults, seed=4)
        request = DiagnosisRequest.from_syndrome(
            "hypercube", {"dimension": 5}, syndrome
        )

        async def inner(client, frontend, service):
            return await client.diagnose(request)

        status, response = _run(_with_frontend(inner))
        assert status == 200
        assert response.faulty_set == faults

    def test_stats_includes_service_and_http_sections(self):
        async def inner(client, frontend, service):
            await client.diagnose(_request(0))
            return await client.stats()

        stats = _run(_with_frontend(inner, store=ResultStore()))
        assert stats["requests"] == 1
        assert stats["store"]["results"] == 1
        assert stats["http"]["requests"] == 2  # the diagnose + this stats call
        assert stats["http"]["connections_total"] == 1
        assert stats["http"]["shed"] == 0

    def test_keep_alive_reuses_one_connection(self):
        async def inner(client, frontend, service):
            for seed in range(3):
                status, _ = await client.diagnose(_request(seed))
                assert status == 200
            return frontend.connections_total

        assert _run(_with_frontend(inner)) == 1


class TestErrors:
    def test_unknown_path_404(self):
        async def inner(client, frontend, service):
            return await client.request("GET", "/nope")

        status, payload = _run(_with_frontend(inner))
        assert status == 404
        assert "/diagnose" in payload["error"]

    def test_wrong_method_405(self):
        async def inner(client, frontend, service):
            first = await client.request("POST", "/stats")
            second = await client.request("GET", "/diagnose")
            return first, second

        (status_a, body_a), (status_b, body_b) = _run(_with_frontend(inner))
        assert status_a == 405 and "GET" in body_a["error"]
        assert status_b == 405 and "POST" in body_b["error"]

    def test_invalid_json_reports_position(self):
        async def inner(client, frontend, service):
            client._writer.write(
                b"POST /diagnose HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\n  oops}"
            )
            await client._writer.drain()
            return await client._read_response()

        status, payload = _run(_with_frontend(inner))
        assert status == 400
        assert payload["error"].startswith("body:2:3:")

    def test_bad_request_fields_400(self):
        async def inner(client, frontend, service):
            single = await client.request(
                "POST", "/diagnose", {"family": "hypercube", "bogus": 1}
            )
            batch = await client.request(
                "POST", "/diagnose",
                {"requests": [
                    {"family": "hypercube", "params": {"dimension": 5}},
                    {"family": "hypercube", "params": {"dimension": "x"}},
                ]},
            )
            return single, batch

        (status_a, body_a), (status_b, body_b) = _run(_with_frontend(inner))
        assert status_a == 400 and "bogus" in body_a["error"]
        assert status_b == 400 and body_b["error"].startswith("requests[1]:")

    def test_empty_batch_rejected(self):
        async def inner(client, frontend, service):
            return await client.request("POST", "/diagnose", {"requests": []})

        status, payload = _run(_with_frontend(inner))
        assert status == 400
        assert "non-empty" in payload["error"]

    def test_constructor_level_failure_is_400_not_500(self):
        async def inner(client, frontend, service):
            return await client.request(
                "POST", "/diagnose",
                {"family": "hypercube", "params": {"dim": 7}},
            )

        status, payload = _run(_with_frontend(inner))
        assert status == 400
        assert "dim" in payload["error"]

    def test_execution_errors_stay_in_band(self):
        """A Theorem-1 violation is an error *response* (200), not an HTTP error."""
        doomed = DiagnosisRequest.seeded("pancake", {"n": 4}, fault_count=14)

        async def inner(client, frontend, service):
            return await client.diagnose(doomed)

        status, response = _run(_with_frontend(inner))
        assert status == 200
        assert not response.ok
        assert response.error == run_direct(doomed).error

    def test_malformed_request_line_400(self):
        async def inner(client, frontend, service):
            client._writer.write(b"NONSENSE\r\n\r\n")
            await client._writer.drain()
            return await client._read_response()

        status, payload = _run(_with_frontend(inner))
        assert status == 400
        assert "request line" in payload["error"]


class TestAdmissionControl:
    def test_shed_single_requests_answer_429_with_retry_after(self):
        # One keep-alive connection serialises its requests, so saturation
        # needs several connections — one client per request, fired together
        # into a long (0.2 s) coalescing window so the queue bound engages.
        async def saturate():
            service = DiagnosisService(max_queue_depth=2, batch_delay=0.2)
            async with HttpFrontend(service) as frontend:
                clients = [
                    HttpClient(frontend.host, frontend.port) for _ in range(5)
                ]
                for client in clients:
                    await client.connect()
                try:
                    results = await asyncio.gather(*(
                        client.request(
                            "POST", "/diagnose", _request(seed).to_wire()
                        )
                        for seed, client in enumerate(clients)
                    ))
                finally:
                    for client in clients:
                        await client.close()
                shed = frontend.shed
            await service.close()
            return results, shed

        results, shed = _run(saturate())
        statuses = sorted(status for status, _ in results)
        assert statuses.count(429) >= 1
        assert statuses.count(200) >= 2
        assert shed == statuses.count(429)
        for status, payload in results:
            if status == 429:
                assert "queue full" in payload["error"]

    def test_batch_body_sheds_per_item(self):
        async def inner(client, frontend, service):
            body = {"requests": [_request(seed).to_wire() for seed in range(5)]}
            return await client.request("POST", "/diagnose", body)

        status, payload = _run(
            _with_frontend(inner, max_queue_depth=2, batch_delay=0.05)
        )
        assert status == 200
        entries = payload["responses"]
        served = [entry for entry in entries if "faulty" in entry]
        rejected = [entry for entry in entries if entry.get("rejected")]
        assert len(served) == 2
        assert len(rejected) == 3
        assert all("queue full" in entry["error"] for entry in rejected)
        # The served ones are still bit-identical to the direct pipeline.
        for seed, entry in enumerate(entries):
            if "faulty" in entry:
                assert tuple(entry["faulty"]) == run_direct(_request(seed)).faulty


class TestLifecycle:
    def test_graceful_drain_finishes_inflight_requests(self):
        async def scenario():
            service = DiagnosisService(batch_delay=0.05)
            frontend = HttpFrontend(service)
            await frontend.start()
            client = HttpClient(frontend.host, frontend.port)
            await client.connect()
            post = asyncio.create_task(client.diagnose(_request(0)))
            # Handshake, not a nap: close only once the request is really
            # pending inside the service's open batch window.
            deadline = asyncio.get_running_loop().time() + 10
            while service._pending_total == 0:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.001)
            await frontend.close()
            status, response = await post
            await client.close()
            await service.close()
            return status, response

        status, response = _run(scenario())
        assert status == 200
        assert response.faulty == run_direct(_request(0)).faulty

    def test_ephemeral_port_is_reported(self):
        async def scenario():
            service = DiagnosisService()
            async with HttpFrontend(service, port=0) as frontend:
                assert frontend.port != 0
                assert str(frontend.port) in frontend.address
            await service.close()

        _run(scenario())

    def test_background_server_runs_from_sync_code(self):
        with BackgroundHttpServer(
            lambda: DiagnosisService(store=ResultStore())
        ) as server:
            async def drive():
                async with HttpClient("127.0.0.1", server.port) as client:
                    status, response = await client.diagnose(_request(1))
                    again_status, again = await client.diagnose(_request(1))
                    return status, response, again_status, again

            status, response, again_status, again = asyncio.run(drive())
        assert status == again_status == 200
        assert again.source == "store"
        assert again.faulty == response.faulty
        assert server.final_stats["http"]["requests"] == 2

    def test_background_server_factory_error_surfaces(self):
        def explode():
            raise RuntimeError("factory broke")

        with pytest.raises(RuntimeError, match="factory broke"):
            with BackgroundHttpServer(explode):
                pass  # pragma: no cover - never entered


class TestConnectionHeader:
    """``Connection`` is a case-insensitive comma-separated token list.

    Regression: the server used to compare the raw header string to
    ``"close"``, so ``Connection: Close`` (or ``close, te``) left the
    connection open and the peer hung waiting for EOF.
    """

    def test_helper_semantics(self):
        from repro.service.http import _connection_requests_close

        assert _connection_requests_close("close")
        assert _connection_requests_close("Close")
        assert _connection_requests_close("CLOSE")
        assert _connection_requests_close("close, te")
        assert _connection_requests_close(" keep-alive , Close ")
        assert not _connection_requests_close("keep-alive")
        assert not _connection_requests_close("closed")  # not the token
        assert not _connection_requests_close("")
        assert not _connection_requests_close(None)

    def test_mixed_case_close_closes_the_connection(self):
        async def inner(client, frontend, service):
            status, _ = await client.request(
                "GET", "/healthz", headers={"Connection": "Close"}
            )
            return status, client._writer is None

        status, closed = _run(_with_frontend(inner))
        assert status == 200
        assert closed  # server answered Connection: close; client dropped it

    def test_token_list_containing_close_closes(self):
        async def inner(client, frontend, service):
            status, _ = await client.request(
                "GET", "/healthz", headers={"Connection": "close, TE"}
            )
            return status, client._writer is None

        status, closed = _run(_with_frontend(inner))
        assert status == 200
        assert closed

    def test_keep_alive_token_does_not_close(self):
        async def inner(client, frontend, service):
            for _ in range(2):
                status, _ = await client.request(
                    "GET", "/healthz", headers={"Connection": "keep-alive"}
                )
                assert status == 200
            return client._writer is not None, frontend.connections_total

        alive, connections = _run(_with_frontend(inner))
        assert alive
        assert connections == 1


class TestMetricsEndpoint:
    def test_scrape_parses_and_matches_stats(self):
        async def inner(client, frontend, service):
            for seed in range(3):
                status, _ = await client.diagnose(_request(seed))
                assert status == 200
            status, _ = await client.request(
                "POST", "/diagnose", _request(7).to_wire(),
                headers={"X-Tenant": "acme"},
            )
            assert status == 200
            text = await client.metrics_text()
            stats = await client.stats()
            return text, stats

        text, stats = _run(_with_frontend(inner, store=ResultStore()))
        samples = parse_metrics_text(text)

        def sample(name, **labels):
            return samples[(name, tuple(sorted(labels.items())))]

        assert sample("repro_requests_total") == stats["requests"] == 4
        assert sample("repro_tenant_admitted_total", tenant="default") == 3
        assert sample("repro_tenant_admitted_total", tenant="acme") == 1
        assert sample("repro_store_results") == stats["store"]["results"] == 4
        assert sample("repro_request_latency_seconds_count") == 4
        # The scrape itself was the fifth HTTP request on this connection.
        assert sample("repro_http_requests_total") == 5
        assert sample("repro_http_connections_total") == 1
        # Per-tenant series sum to the global counters.
        admitted = sum(
            value for (name, _), value in samples.items()
            if name == "repro_tenant_admitted_total"
        )
        assert admitted == stats["requests"]

    def test_content_type_is_prometheus_text(self):
        async def inner(client, frontend, service):
            client._writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
            await client._writer.drain()
            head = await client._reader.readuntil(b"\r\n\r\n")
            headers = {}
            for line in head.decode("latin-1").split("\r\n")[1:]:
                if line:
                    name, _, value = line.partition(":")
                    headers[name.strip().lower()] = value.strip()
            body = await client._reader.readexactly(
                int(headers["content-length"])
            )
            return headers, body.decode()

        headers, body = _run(_with_frontend(inner))
        assert headers["content-type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        parse_metrics_text(body)  # structurally valid even with zero traffic

    def test_post_is_405(self):
        async def inner(client, frontend, service):
            return await client.request("POST", "/metrics")

        status, payload = _run(_with_frontend(inner))
        assert status == 405
        assert "GET" in payload["error"]


class TestDashboard:
    def test_dashboard_is_html_over_stats(self):
        async def inner(client, frontend, service):
            status, _ = await client.request(
                "POST", "/diagnose", _request(0).to_wire(),
                headers={"X-Tenant": "acme"},
            )
            assert status == 200
            return await client.request("GET", "/dashboard")

        status, body = _run(_with_frontend(inner))
        assert status == 200
        assert isinstance(body, str)
        assert body.startswith("<!DOCTYPE html>")
        assert "acme" in body
        assert "</html>" in body

    def test_post_is_405(self):
        async def inner(client, frontend, service):
            return await client.request("POST", "/dashboard")

        status, payload = _run(_with_frontend(inner))
        assert status == 405


class TestTenantHeader:
    def test_header_sets_the_default_tenant(self):
        async def inner(client, frontend, service):
            status, _ = await client.request(
                "POST", "/diagnose", _request(0).to_wire(),
                headers={"X-Tenant": "acme"},
            )
            assert status == 200
            return await client.stats()

        stats = _run(_with_frontend(inner))
        assert stats["tenants"]["acme"]["admitted"] == 1
        assert "default" not in stats["tenants"]

    def test_body_tenant_wins_over_header(self):
        async def inner(client, frontend, service):
            status, _ = await client.request(
                "POST", "/diagnose", _request(0, tenant="vip").to_wire(),
                headers={"X-Tenant": "acme"},
            )
            assert status == 200
            return await client.stats()

        stats = _run(_with_frontend(inner))
        assert stats["tenants"]["vip"]["admitted"] == 1
        assert "acme" not in stats["tenants"]

    def test_header_applies_per_item_in_batch_bodies(self):
        async def inner(client, frontend, service):
            body = {"requests": [
                _request(0).to_wire(),
                _request(1, tenant="vip").to_wire(),
            ]}
            status, payload = await client.request(
                "POST", "/diagnose", body, headers={"X-Tenant": "acme"}
            )
            assert status == 200
            assert len(payload["responses"]) == 2
            return await client.stats()

        stats = _run(_with_frontend(inner))
        assert stats["tenants"]["acme"]["admitted"] == 1
        assert stats["tenants"]["vip"]["admitted"] == 1

    def test_invalid_header_is_400(self):
        async def inner(client, frontend, service):
            return await client.request(
                "POST", "/diagnose", _request(0).to_wire(),
                headers={"X-Tenant": "no spaces allowed"},
            )

        status, payload = _run(_with_frontend(inner))
        assert status == 400
        assert payload["error"].startswith("X-Tenant header:")

    def test_quota_shed_answers_429_per_tenant(self):
        async def inner(client, frontend, service):
            body = {"requests": [
                _request(seed, tenant="hot").to_wire() for seed in range(4)
            ]}
            status, payload = await client.request("POST", "/diagnose", body)
            assert status == 200
            rejected = [e for e in payload["responses"] if e.get("rejected")]
            return rejected, await client.stats()

        rejected, stats = _run(_with_frontend(
            inner, max_queue_per_tenant=2, batch_delay=0.05
        ))
        assert len(rejected) == 2
        assert all("hot" in entry["error"] for entry in rejected)
        assert stats["tenants"]["hot"]["rejected"] == 2
        assert stats["tenants"]["hot"]["admitted"] == 2


class TestTargetParsing:
    def test_accepted_forms(self):
        assert parse_http_target("http://127.0.0.1:8091") == ("127.0.0.1", 8091)
        assert parse_http_target("localhost:80") == ("localhost", 80)
        assert parse_http_target(":9000") == ("127.0.0.1", 9000)

    def test_rejected_forms(self):
        with pytest.raises(ValueError, match="explicit port"):
            parse_http_target("http://localhost")
        with pytest.raises(ValueError, match="http://"):
            parse_http_target("https://localhost:443")


class TestWireCodecs:
    def test_request_roundtrip_seeded_and_explicit(self):
        seeded = _request(5, placement="clustered", behavior="mimic")
        assert DiagnosisRequest.from_dict(seeded.to_wire()) == seeded
        explicit = DiagnosisRequest.from_syndrome(
            "hypercube", {"dimension": 5}, b"\x01\x02\x03"
        )
        assert DiagnosisRequest.from_dict(explicit.to_wire()) == explicit

    def test_syndrome_hex_rejects_seeded_fields(self):
        with pytest.raises(ValueError, match="cannot combine"):
            DiagnosisRequest.from_dict(
                {"family": "hypercube", "syndrome_hex": "00", "seed": 1}
            )
        with pytest.raises(ValueError, match="bad syndrome_hex"):
            DiagnosisRequest.from_dict(
                {"family": "hypercube", "syndrome_hex": "zz"}
            )

    def test_response_wire_roundtrip(self):
        request = _request(2)
        direct = run_direct(request)
        decoded = type(direct).from_wire(json.loads(json.dumps(direct.to_wire())))
        assert decoded == direct
