"""Load generator: determinism, closed-loop accounting, verification."""

from __future__ import annotations

import pytest

from repro.service import LoadSpec, ResultStore, build_client_streams, run_load_sync

MIX = (("hypercube", {"dimension": 6}), ("star", {"n": 5}))


def _spec(**kwargs) -> LoadSpec:
    defaults = dict(clients=3, requests_per_client=4, seed=0, seed_pool=3)
    defaults.update(kwargs)
    return LoadSpec.from_mix(MIX, **defaults)


class TestStreams:
    def test_streams_are_deterministic(self):
        assert build_client_streams(_spec()) == build_client_streams(_spec())

    def test_adding_clients_never_reshuffles_existing_ones(self):
        three = build_client_streams(_spec(clients=3))
        five = build_client_streams(_spec(clients=5))
        assert five[:3] == three

    def test_stream_shape(self):
        streams = build_client_streams(_spec())
        assert len(streams) == 3
        assert all(len(stream) == 4 for stream in streams)
        families = {request.family for stream in streams for request in stream}
        assert families <= {"hypercube", "star"}

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="clients"):
            LoadSpec.from_mix(MIX, clients=0)
        with pytest.raises(ValueError, match="requests"):
            LoadSpec.from_mix(MIX, requests_per_client=0)
        with pytest.raises(ValueError, match="seed_pool"):
            LoadSpec.from_mix(MIX, seed_pool=0)
        with pytest.raises(ValueError, match="at least one instance"):
            LoadSpec.from_mix([])


class TestRuns:
    def test_batched_run_answers_everything(self):
        report = run_load_sync(_spec(), store=ResultStore(), verify=True)
        assert report.requests == 12
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.throughput_rps > 0
        sources = report.source_counts()
        assert sum(sources.values()) == 12
        # seed_pool=3 over 12 requests guarantees repeats: something must be
        # deduplicated (from the store or an in-flight computation).
        assert sources["store"] + sources["coalesced"] > 0

    def test_naive_run_computes_every_request(self):
        report = run_load_sync(_spec(), naive=True, verify=True)
        assert report.source_counts() == {"computed": 12, "store": 0, "coalesced": 0}
        assert report.mismatches == 0
        assert report.stats["coalesced_batches"] == 0

    def test_naive_and_batched_agree_answer_for_answer(self):
        batched = run_load_sync(_spec(), store=ResultStore())
        naive = run_load_sync(_spec(), naive=True)
        assert [r.faulty for r in batched.responses] == [
            r.faulty for r in naive.responses
        ]
        assert [r.lookups for r in batched.responses] == [
            r.lookups for r in naive.responses
        ]

    def test_summary_shape(self):
        report = run_load_sync(_spec())
        summary = report.summary()
        assert summary["clients"] == 3
        assert summary["requests"] == 12
        assert set(summary["sources"]) == {"computed", "store", "coalesced"}
        assert summary["rejections"] == 0
        assert "stats" in summary


class TestHttpTransport:
    def test_http_load_verifies_against_direct(self):
        from repro.service import (
            BackgroundHttpServer,
            DiagnosisService,
            run_load_http_sync,
        )

        spec = _spec()
        with BackgroundHttpServer(
            lambda: DiagnosisService(store=ResultStore())
        ) as server:
            report = run_load_http_sync(spec, server.address, verify=True)
        assert report.requests == 12
        assert report.mismatches == 0
        assert report.errors == 0
        assert report.rejections == 0
        # The report's stats came over the wire from /stats.
        assert report.stats["requests"] == 12
        assert report.stats["http"]["connections_total"] == spec.clients + 1

    def test_http_load_absorbs_shedding_and_counts_it(self):
        from repro.service import (
            BackgroundHttpServer,
            DiagnosisService,
            run_load_http_sync,
        )

        spec = _spec(clients=4, requests_per_client=3)
        with BackgroundHttpServer(
            lambda: DiagnosisService(max_queue_depth=1, batch_delay=0.05)
        ) as server:
            report = run_load_http_sync(
                spec, server.address, verify=True, retry_delay=0.01
            )
        # Every request was eventually served and verified...
        assert report.requests == 12
        assert report.mismatches == 0
        # ...and the saturating spec (4 concurrent clients, queue bound 1,
        # a 50 ms window) forced at least one 429 along the way.
        assert report.rejections >= 1
        assert report.stats["rejected"] == report.rejections

    def test_bad_target_rejected(self):
        from repro.service import run_load_http_sync

        with pytest.raises(ValueError, match="explicit port"):
            run_load_http_sync(_spec(), "http://localhost")


class TestTenantStreams:
    def test_streams_carry_the_spec_tenant(self):
        spec = _spec(tenant="acme")
        streams = build_client_streams(spec)
        assert all(
            request.tenant == "acme"
            for stream in streams for request in stream
        )

    def test_tenant_does_not_perturb_the_request_sequence(self):
        plain = build_client_streams(_spec())
        tenanted = build_client_streams(_spec(tenant="acme"))
        for a, b in zip(plain, tenanted):
            assert [r.seed for r in a] == [r.seed for r in b]
            assert [r.family for r in a] == [r.family for r in b]

    def test_invalid_tenant_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            _spec(tenant="")


class TestFairness:
    def _spec(self, **kwargs):
        from repro.service import FairnessSpec

        defaults = dict(
            hot_requests=12, cold_tenants=3, cold_requests_per_tenant=2,
            max_queue_per_tenant=2, seed=0, seed_pool=64,
        )
        defaults.update(kwargs)
        return FairnessSpec.from_mix(MIX, **defaults)

    def test_cold_tenants_complete_while_hot_is_shed(self):
        from repro.service import run_fairness_sync

        report = run_fairness_sync(self._spec())
        assert report.cold_completion == 1.0  # the acceptance criterion
        assert report.hot_shed > 0  # the burst hit its quota
        assert report.hot_served + report.hot_shed == 12
        # seed_pool=64 over 12 requests: no coalesced joins, so the hot
        # tenant serves exactly its quota slots.
        assert report.hot_served == 2

    def test_shed_split_is_deterministic(self):
        import json

        from repro.service import run_fairness_sync

        first = run_fairness_sync(self._spec())
        second = run_fairness_sync(self._spec())
        assert json.dumps(first.split(), sort_keys=True) == \
            json.dumps(second.split(), sort_keys=True)
        # The split is by submission order: the quota slots go to the first
        # requests of the burst, everything after sheds.
        assert first.hot_shed_indices == tuple(range(2, 12))

    def test_coalesced_joins_ride_past_the_quota(self):
        from repro.service import run_fairness_sync

        # seed_pool=2 forces duplicate requests inside the burst: joins on
        # an in-flight key consume no quota slot, so more than quota serves.
        report = run_fairness_sync(self._spec(seed_pool=2))
        assert report.hot_served > 2
        assert report.cold_completion == 1.0

    def test_summary_shape(self):
        from repro.service import run_fairness_sync

        report = run_fairness_sync(self._spec())
        summary = report.summary()
        assert summary["hot_tenant"] == "hot"
        assert summary["hot_requests"] == 12
        assert summary["hot_served"] + summary["hot_shed"] == 12
        assert summary["cold_completion"] == 1.0
        assert summary["max_queue_per_tenant"] == 2
        assert report.stats["tenants"]["hot"]["rejected"] == report.hot_shed

    def test_weights_reach_the_service(self):
        from repro.service import run_fairness_sync

        report = run_fairness_sync(
            self._spec(tenant_weights={"hot": 2, "cold-00": 1})
        )
        assert report.stats["tenant_weights"] == {"hot": 2, "cold-00": 1}
        assert report.cold_completion == 1.0

    def test_spec_validation(self):
        from repro.service import FairnessSpec

        with pytest.raises(ValueError, match="cold_tenants"):
            FairnessSpec.from_mix(MIX, cold_tenants=0)
        with pytest.raises(ValueError, match="request counts"):
            FairnessSpec.from_mix(MIX, hot_requests=0)
        with pytest.raises(ValueError, match="max_queue_per_tenant"):
            FairnessSpec.from_mix(MIX, max_queue_per_tenant=0)
        with pytest.raises(ValueError, match="at least one instance"):
            FairnessSpec.from_mix([])
