"""Load generator: determinism, closed-loop accounting, verification."""

from __future__ import annotations

import pytest

from repro.service import LoadSpec, ResultStore, build_client_streams, run_load_sync

MIX = (("hypercube", {"dimension": 6}), ("star", {"n": 5}))


def _spec(**kwargs) -> LoadSpec:
    defaults = dict(clients=3, requests_per_client=4, seed=0, seed_pool=3)
    defaults.update(kwargs)
    return LoadSpec.from_mix(MIX, **defaults)


class TestStreams:
    def test_streams_are_deterministic(self):
        assert build_client_streams(_spec()) == build_client_streams(_spec())

    def test_adding_clients_never_reshuffles_existing_ones(self):
        three = build_client_streams(_spec(clients=3))
        five = build_client_streams(_spec(clients=5))
        assert five[:3] == three

    def test_stream_shape(self):
        streams = build_client_streams(_spec())
        assert len(streams) == 3
        assert all(len(stream) == 4 for stream in streams)
        families = {request.family for stream in streams for request in stream}
        assert families <= {"hypercube", "star"}

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="clients"):
            LoadSpec.from_mix(MIX, clients=0)
        with pytest.raises(ValueError, match="requests"):
            LoadSpec.from_mix(MIX, requests_per_client=0)
        with pytest.raises(ValueError, match="seed_pool"):
            LoadSpec.from_mix(MIX, seed_pool=0)
        with pytest.raises(ValueError, match="at least one instance"):
            LoadSpec.from_mix([])


class TestRuns:
    def test_batched_run_answers_everything(self):
        report = run_load_sync(_spec(), store=ResultStore(), verify=True)
        assert report.requests == 12
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.throughput_rps > 0
        sources = report.source_counts()
        assert sum(sources.values()) == 12
        # seed_pool=3 over 12 requests guarantees repeats: something must be
        # deduplicated (from the store or an in-flight computation).
        assert sources["store"] + sources["coalesced"] > 0

    def test_naive_run_computes_every_request(self):
        report = run_load_sync(_spec(), naive=True, verify=True)
        assert report.source_counts() == {"computed": 12, "store": 0, "coalesced": 0}
        assert report.mismatches == 0
        assert report.stats["coalesced_batches"] == 0

    def test_naive_and_batched_agree_answer_for_answer(self):
        batched = run_load_sync(_spec(), store=ResultStore())
        naive = run_load_sync(_spec(), naive=True)
        assert [r.faulty for r in batched.responses] == [
            r.faulty for r in naive.responses
        ]
        assert [r.lookups for r in batched.responses] == [
            r.lookups for r in naive.responses
        ]

    def test_summary_shape(self):
        report = run_load_sync(_spec())
        summary = report.summary()
        assert summary["clients"] == 3
        assert summary["requests"] == 12
        assert set(summary["sources"]) == {"computed", "store", "coalesced"}
        assert summary["rejections"] == 0
        assert "stats" in summary


class TestHttpTransport:
    def test_http_load_verifies_against_direct(self):
        from repro.service import (
            BackgroundHttpServer,
            DiagnosisService,
            run_load_http_sync,
        )

        spec = _spec()
        with BackgroundHttpServer(
            lambda: DiagnosisService(store=ResultStore())
        ) as server:
            report = run_load_http_sync(spec, server.address, verify=True)
        assert report.requests == 12
        assert report.mismatches == 0
        assert report.errors == 0
        assert report.rejections == 0
        # The report's stats came over the wire from /stats.
        assert report.stats["requests"] == 12
        assert report.stats["http"]["connections_total"] == spec.clients + 1

    def test_http_load_absorbs_shedding_and_counts_it(self):
        from repro.service import (
            BackgroundHttpServer,
            DiagnosisService,
            run_load_http_sync,
        )

        spec = _spec(clients=4, requests_per_client=3)
        with BackgroundHttpServer(
            lambda: DiagnosisService(max_queue_depth=1, batch_delay=0.05)
        ) as server:
            report = run_load_http_sync(
                spec, server.address, verify=True, retry_delay=0.01
            )
        # Every request was eventually served and verified...
        assert report.requests == 12
        assert report.mismatches == 0
        # ...and the saturating spec (4 concurrent clients, queue bound 1,
        # a 50 ms window) forced at least one 429 along the way.
        assert report.rejections >= 1
        assert report.stats["rejected"] == report.rejections

    def test_bad_target_rejected(self):
        from repro.service import run_load_http_sync

        with pytest.raises(ValueError, match="explicit port"):
            run_load_http_sync(_spec(), "http://localhost")
