"""Histogram and service-metrics accounting."""

from __future__ import annotations

import pytest

from repro.service.metrics import Histogram, ServiceMetrics


class TestHistogram:
    def test_count_sum_extremes(self):
        histogram = Histogram()
        for value in (0.001, 0.01, 0.1):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.1)
        assert histogram.mean == pytest.approx(0.111 / 3)

    def test_quantiles_bound_observations(self):
        histogram = Histogram()
        values = [i / 1000 for i in range(1, 101)]
        for value in values:
            histogram.record(value)
        # Geometric buckets give ~growth relative error; check sanity bounds.
        assert histogram.quantile(0.0) <= values[5]
        assert histogram.quantile(0.5) == pytest.approx(0.05, rel=0.25)
        assert histogram.quantile(1.0) == pytest.approx(histogram.max)

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}
        assert Histogram().quantile(0.5) == 0.0

    def test_summary_scaling(self):
        histogram = Histogram()
        histogram.record(0.5)
        summary = histogram.summary(scale=1e3)
        assert summary["mean"] == pytest.approx(500.0)
        assert summary["p50"] == pytest.approx(500.0, rel=0.25)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            Histogram(smallest=0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram().record(-1)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestServiceMetrics:
    def test_response_source_accounting(self):
        metrics = ServiceMetrics()
        metrics.record_enqueue(0)
        metrics.record_response("computed", 0.01)
        metrics.record_response("store", 0.001)
        metrics.record_response("coalesced", 0.002, ok=False)
        snapshot = metrics.snapshot()
        assert snapshot["computed"] == 1
        assert snapshot["store_hits"] == 1
        assert snapshot["coalesced_duplicates"] == 1
        assert snapshot["errors"] == 1
        assert snapshot["latency_ms"]["count"] == 3

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            ServiceMetrics().record_response("cache", 0.1)

    def test_batch_accounting(self):
        metrics = ServiceMetrics()
        metrics.record_batch(1, compiles=0, pair_builds=0)
        metrics.record_batch(5, compiles=0, pair_builds=1)
        snapshot = metrics.snapshot()
        assert snapshot["batches"] == 2
        assert snapshot["coalesced_batches"] == 1
        assert snapshot["mean_batch_size"] == pytest.approx(3.0)
        assert snapshot["worker_pair_builds"] == 1
