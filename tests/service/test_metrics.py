"""Histogram and service-metrics accounting."""

from __future__ import annotations

import pytest

from repro.service.metrics import Histogram, ServiceMetrics


class TestHistogram:
    def test_count_sum_extremes(self):
        histogram = Histogram()
        for value in (0.001, 0.01, 0.1):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.1)
        assert histogram.mean == pytest.approx(0.111 / 3)

    def test_quantiles_bound_observations(self):
        histogram = Histogram()
        values = [i / 1000 for i in range(1, 101)]
        for value in values:
            histogram.record(value)
        # Geometric buckets give ~growth relative error; check sanity bounds.
        assert histogram.quantile(0.0) <= values[5]
        assert histogram.quantile(0.5) == pytest.approx(0.05, rel=0.25)
        assert histogram.quantile(1.0) == pytest.approx(histogram.max)

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}
        assert Histogram().quantile(0.5) == 0.0

    def test_empty_histogram_pins(self):
        """Empty-histogram behavior is part of the stats contract."""
        histogram = Histogram()
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 0.0
        assert histogram.mean == 0.0
        assert histogram.min is None and histogram.max is None

    def test_quantile_zero_pins(self):
        singleton = Histogram()
        singleton.record(0.37)
        # min == max: every quantile clamps to the one observation.
        assert singleton.quantile(0.0) == pytest.approx(0.37)
        assert singleton.quantile(1.0) == pytest.approx(0.37)
        spread = Histogram()
        for value in (0.002, 0.04, 0.9):
            spread.record(value)
        # q=0 lands in the lowest occupied bucket, clamped below by min.
        assert spread.quantile(0.0) >= spread.min
        assert spread.quantile(0.0) <= spread._bucket_upper(spread._bucket(0.002))

    def test_bucket_boundaries_are_stable(self):
        """Regression: values on a bucket's upper bound must land *in* that
        bucket, however the float log quotient rounds."""
        histogram = Histogram(smallest=1e-5, growth=1.2)
        for index in range(1, 120):
            upper = histogram._bucket_upper(index)
            assert histogram._bucket(upper) == index, index
            # Nudging above the bound moves to (exactly) the next bucket.
            assert histogram._bucket(upper * (1 + 1e-12)) == index + 1, index

    def test_bucket_boundaries_stable_across_growth_factors(self):
        for smallest, growth in ((1.0, 1.5), (1e-5, 1.2), (0.5, 2.0), (1e-3, 1.07)):
            histogram = Histogram(smallest=smallest, growth=growth)
            assert histogram._bucket(smallest) == 0
            for index in range(1, 80):
                upper = histogram._bucket_upper(index)
                assert histogram._bucket(upper) == index, (smallest, growth, index)

    def test_bucket_is_monotone_and_brackets_values(self):
        histogram = Histogram(smallest=1e-4, growth=1.3)
        values = [1e-5 * 1.17 ** k for k in range(200)]
        indices = [histogram._bucket(value) for value in values]
        assert indices == sorted(indices)
        for value, index in zip(values, indices):
            assert value <= histogram._bucket_upper(index)
            if index >= 1:
                assert value > histogram._bucket_upper(index - 1)

    def test_summary_scaling(self):
        histogram = Histogram()
        histogram.record(0.5)
        summary = histogram.summary(scale=1e3)
        assert summary["mean"] == pytest.approx(500.0)
        assert summary["p50"] == pytest.approx(500.0, rel=0.25)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            Histogram(smallest=0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram().record(-1)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestServiceMetrics:
    def test_response_source_accounting(self):
        metrics = ServiceMetrics()
        metrics.record_enqueue(0)
        metrics.record_response("computed", 0.01)
        metrics.record_response("store", 0.001)
        metrics.record_response("coalesced", 0.002, ok=False)
        snapshot = metrics.snapshot()
        assert snapshot["computed"] == 1
        assert snapshot["store_hits"] == 1
        assert snapshot["coalesced_duplicates"] == 1
        assert snapshot["errors"] == 1
        assert snapshot["latency_ms"]["count"] == 3

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            ServiceMetrics().record_response("cache", 0.1)

    def test_rejection_accounting(self):
        metrics = ServiceMetrics()
        metrics.record_enqueue(0)
        metrics.record_rejection(4)
        metrics.record_rejection(5)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 3  # rejections are requests too
        assert snapshot["rejected"] == 2
        # Shed requests still feed the queue-depth telemetry that motivated
        # the admission bound in the first place.
        assert snapshot["queue_depth"]["count"] == 3
        assert snapshot["queue_depth"]["max"] == 5.0

    def test_batch_accounting(self):
        metrics = ServiceMetrics()
        metrics.record_batch(1, compiles=0, pair_builds=0)
        metrics.record_batch(5, compiles=0, pair_builds=1)
        snapshot = metrics.snapshot()
        assert snapshot["batches"] == 2
        assert snapshot["coalesced_batches"] == 1
        assert snapshot["mean_batch_size"] == pytest.approx(3.0)
        assert snapshot["worker_pair_builds"] == 1

    def test_kernel_width_drives_the_batch_size_histogram(self):
        metrics = ServiceMetrics()
        metrics.record_batch(5, compiles=0, pair_builds=0, kernel_width=3)
        # a batch whose every syndrome failed to construct: counted as a
        # batch, but no histogram sample (the kernel never ran)
        metrics.record_batch(2, compiles=0, pair_builds=0, kernel_width=0)
        snapshot = metrics.snapshot()
        assert snapshot["batches"] == 2
        assert snapshot["coalesced_batches"] == 2
        assert snapshot["batch_size"]["count"] == 1
        assert snapshot["mean_batch_size"] == pytest.approx(3.0)
