"""Package surface: lazy exports resolve, unknown names fail cleanly."""

from __future__ import annotations

import pytest

import repro.service as service_pkg


class TestLazyExports:
    def test_every_advertised_name_resolves(self):
        for name in service_pkg.__all__:
            assert getattr(service_pkg, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            service_pkg.not_a_thing

    def test_dir_lists_exports(self):
        listing = dir(service_pkg)
        assert "DiagnosisService" in listing
        assert "LRUCache" in listing

    def test_registry_import_does_not_drag_in_the_service(self):
        """The registry depends only on the cache module (no import cycle)."""
        import subprocess
        import sys

        code = (
            "import sys; import repro.networks.registry; "
            "assert 'repro.service.service' not in sys.modules, 'eager import'; "
            "assert 'repro.service.cache' in sys.modules"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
