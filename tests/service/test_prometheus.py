"""Prometheus exporter: render/parse round-trip and format validation."""

from __future__ import annotations

import math

import pytest

from repro.service import (
    MetricsParseError,
    ServiceMetrics,
    parse_metrics_text,
    render_metrics,
)
from repro.service.prometheus import _escape_label, _format_value


def populated_metrics() -> ServiceMetrics:
    metrics = ServiceMetrics()
    for index in range(5):
        metrics.record_enqueue(index, tenant="acme")
    metrics.record_enqueue(5, tenant="beta")
    metrics.record_rejection(6, tenant="acme")
    metrics.record_batch(5, compiles=0, pair_builds=0, kernel_width=5)
    for index in range(5):
        metrics.record_response("computed", 0.01 * (index + 1), tenant="acme")
    metrics.record_response("store", 0.001, tenant="beta")
    metrics.queue_wait.record(0.002)
    return metrics


def series(samples, name, **labels):
    return samples[(name, tuple(sorted(labels.items())))]


class TestRoundTrip:
    def test_parse_accepts_render(self):
        text = render_metrics(populated_metrics())
        samples = parse_metrics_text(text)
        assert samples  # structural checks all passed

    def test_counters_round_trip(self):
        samples = parse_metrics_text(render_metrics(populated_metrics()))
        assert series(samples, "repro_requests_total") == 7
        assert series(samples, "repro_rejected_total") == 1
        assert series(samples, "repro_responses_total", source="computed") == 5
        assert series(samples, "repro_responses_total", source="store") == 1
        assert series(samples, "repro_batches_total") == 1

    def test_tenant_labels_round_trip(self):
        samples = parse_metrics_text(render_metrics(populated_metrics()))
        assert series(samples, "repro_tenant_admitted_total", tenant="acme") == 5
        assert series(samples, "repro_tenant_admitted_total", tenant="beta") == 1
        assert series(samples, "repro_tenant_rejected_total", tenant="acme") == 1
        assert series(samples, "repro_tenant_served_total",
                      tenant="acme", source="computed") == 5
        assert series(samples, "repro_tenant_served_total",
                      tenant="beta", source="store") == 1

    def test_histogram_buckets_cumulative_and_complete(self):
        metrics = populated_metrics()
        samples = parse_metrics_text(render_metrics(metrics))
        assert series(samples, "repro_request_latency_seconds_count") == 6
        assert series(samples, "repro_request_latency_seconds_bucket",
                      le="+Inf") == 6
        total = series(samples, "repro_request_latency_seconds_sum")
        assert total == pytest.approx(metrics.latency.total)
        # Every finite bucket's cumulative count matches a direct count of
        # recorded values at or below its upper bound.
        recorded = [0.01, 0.02, 0.03, 0.04, 0.05, 0.001]
        for (name, labels), value in samples.items():
            if name != "repro_request_latency_seconds_bucket":
                continue
            upper_text = dict(labels)["le"]
            if upper_text == "+Inf":
                continue
            upper = float(upper_text)
            assert value == sum(1 for v in recorded if v <= upper * (1 + 1e-12))

    def test_consistent_with_stats_snapshot(self):
        metrics = populated_metrics()
        snapshot = metrics.snapshot()
        samples = parse_metrics_text(render_metrics(metrics))
        assert series(samples, "repro_requests_total") == snapshot["requests"]
        for tenant, row in snapshot["tenants"].items():
            assert series(samples, "repro_tenant_admitted_total",
                          tenant=tenant) == row["admitted"]
            served = sum(
                series(samples, "repro_tenant_served_total",
                       tenant=tenant, source=source)
                for source in ("computed", "store", "coalesced")
            )
            assert served == row["served"]

    def test_optional_sections(self):
        text = render_metrics(
            populated_metrics(),
            pending=3,
            pending_by_tenant={"acme": 2, "beta": 1},
            cache_stats={"size": 4, "hits": 10, "misses": 2, "evictions": 1},
            store_stats={"results": 7, "hits": 5, "misses": 3, "writes": 7,
                         "dedup_writes": 0, "expired_evictions": 0,
                         "lru_evictions": 0, "clock_skew_skips": 0},
            http_stats={"connections_open": 1, "connections_total": 9,
                        "requests": 20, "shed": 2, "client_errors": 1},
        )
        samples = parse_metrics_text(text)
        assert series(samples, "repro_pending_requests") == 3
        assert series(samples, "repro_tenant_pending_requests",
                      tenant="acme") == 2
        assert series(samples, "repro_topology_cache_entries") == 4
        assert series(samples, "repro_topology_cache_events_total",
                      event="hits") == 10
        assert series(samples, "repro_store_results") == 7
        assert series(samples, "repro_store_events_total",
                      event="clock_skew_skips") == 0
        assert series(samples, "repro_http_shed_total") == 2

    def test_store_stats_missing_event_defaults_to_zero(self):
        # A pre-upgrade stats dict without clock_skew_skips must not KeyError.
        text = render_metrics(
            ServiceMetrics(),
            store_stats={"results": 0, "hits": 0, "misses": 0, "writes": 0,
                         "dedup_writes": 0, "expired_evictions": 0,
                         "lru_evictions": 0},
        )
        samples = parse_metrics_text(text)
        assert series(samples, "repro_store_events_total",
                      event="clock_skew_skips") == 0

    def test_empty_metrics_render_cleanly(self):
        samples = parse_metrics_text(render_metrics(ServiceMetrics()))
        assert series(samples, "repro_requests_total") == 0
        # Empty histograms still expose the mandatory series.
        assert series(samples, "repro_request_latency_seconds_bucket",
                      le="+Inf") == 0
        assert series(samples, "repro_request_latency_seconds_count") == 0


class TestFormatting:
    def test_label_escaping_round_trips(self):
        metrics = ServiceMetrics()
        awkward = 'a.b:c@d-e_f'
        metrics.record_enqueue(0, tenant=awkward)
        samples = parse_metrics_text(render_metrics(metrics))
        assert series(samples, "repro_tenant_admitted_total",
                      tenant=awkward) == 1

    def test_escape_label(self):
        assert _escape_label('a"b') == r'a\"b'
        assert _escape_label("a\\b") == r"a\\b"
        assert _escape_label("a\nb") == r"a\nb"

    def test_format_value(self):
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"
        assert _format_value(math.inf) == "+Inf"
        assert _format_value(-math.inf) == "-Inf"
        assert _format_value(math.nan) == "NaN"

    def test_content_shape(self):
        text = render_metrics(populated_metrics())
        assert text.endswith("\n")
        lines = text.splitlines()
        # Every family leads with HELP then TYPE.
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                assert lines[index - 1].startswith("# HELP ")


class TestParserRejections:
    def test_orphan_sample(self):
        with pytest.raises(MetricsParseError, match="no preceding # TYPE"):
            parse_metrics_text("repro_surprise_total 3\n")

    def test_malformed_type(self):
        with pytest.raises(MetricsParseError, match="unknown metric type"):
            parse_metrics_text(
                "# HELP repro_x x\n# TYPE repro_x bogus\nrepro_x 1\n"
            )

    def test_duplicate_type(self):
        with pytest.raises(MetricsParseError, match="duplicate TYPE"):
            parse_metrics_text(
                "# HELP repro_x x\n# TYPE repro_x counter\n"
                "# TYPE repro_x counter\nrepro_x_total 1\n"
            )

    def test_duplicate_series(self):
        with pytest.raises(MetricsParseError, match="duplicate series"):
            parse_metrics_text(
                "# HELP repro_x x\n# TYPE repro_x counter\n"
                "repro_x_total 1\nrepro_x_total 2\n"
            )

    def test_malformed_labels(self):
        with pytest.raises(MetricsParseError, match="malformed labels"):
            parse_metrics_text(
                "# HELP repro_x x\n# TYPE repro_x counter\n"
                'repro_x_total{tenant="a" extra} 1\n'
            )

    def test_bad_value(self):
        with pytest.raises(MetricsParseError, match="bad sample value"):
            parse_metrics_text(
                "# HELP repro_x x\n# TYPE repro_x gauge\nrepro_x elephant\n"
            )

    def test_non_monotone_histogram(self):
        with pytest.raises(MetricsParseError, match="not monotone"):
            parse_metrics_text(
                "# HELP repro_h h\n# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 5\n'
                'repro_h_bucket{le="2"} 3\n'
                'repro_h_bucket{le="+Inf"} 5\n'
                "repro_h_sum 4\nrepro_h_count 5\n"
            )

    def test_missing_inf_bucket(self):
        with pytest.raises(MetricsParseError, match=r"missing \+Inf"):
            parse_metrics_text(
                "# HELP repro_h h\n# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 5\n'
                "repro_h_sum 4\nrepro_h_count 5\n"
            )

    def test_count_disagrees_with_inf_bucket(self):
        with pytest.raises(MetricsParseError, match="disagrees"):
            parse_metrics_text(
                "# HELP repro_h h\n# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 5\n'
                'repro_h_bucket{le="+Inf"} 5\n'
                "repro_h_sum 4\nrepro_h_count 6\n"
            )

    def test_tampered_render_is_caught(self):
        text = render_metrics(populated_metrics())
        tampered = text.replace(
            'repro_request_latency_seconds_bucket{le="+Inf"} 6',
            'repro_request_latency_seconds_bucket{le="+Inf"} 5',
        )
        assert tampered != text
        with pytest.raises(MetricsParseError):
            parse_metrics_text(tampered)

    def test_free_form_comments_ignored(self):
        samples = parse_metrics_text(
            "# scraped from somewhere\n"
            "# HELP repro_x x\n# TYPE repro_x gauge\nrepro_x 1\n"
        )
        assert series(samples, "repro_x") == 1
