"""Property tests: LRU cache accounting and histogram bucketing invariants.

Randomised (but seeded) operation sequences against a transparent reference
model — the style of check that caught neither the replacement-leak nor the
boundary-bucket bug when each was a single hand-picked example away.
"""

from __future__ import annotations

import random

from repro.service.cache import LRUCache
from repro.service.metrics import Histogram

KEYS = list("abcdefgh")


class _Tracker:
    """Records every on_evict call and checks it against the cache's books."""

    def __init__(self) -> None:
        self.evicted: list[tuple] = []

    def __call__(self, key, value) -> None:
        self.evicted.append((key, value))


def _check_invariants(cache: LRUCache, tracker: _Tracker, live: dict) -> None:
    stats = cache.stats()
    # Accounting invariant: the eviction counter counts exactly the on_evict
    # calls — owners of external resources can reconcile against it.
    assert stats.evictions == len(tracker.evicted)
    # Bounding invariant: never over capacity.
    assert len(cache) <= cache.capacity
    assert stats.size == len(cache)
    # Conservation: everything ever put is either live in the cache or was
    # handed to on_evict (values are unique objects, so counts match).
    assert len(live) == len(cache)
    for key in cache:
        assert key in live


class TestLRUCacheProperties:
    def test_random_operation_sequences_keep_the_books(self):
        for seed in range(20):
            rng = random.Random(seed)
            tracker = _Tracker()
            cache: LRUCache = LRUCache(rng.randint(0, 5), on_evict=tracker)
            live: dict = {}  # reference model of what the cache holds
            counter = 0
            for _ in range(300):
                operation = rng.random()
                if operation < 0.45:
                    key = rng.choice(KEYS)
                    value = (key, counter)  # unique value per put
                    counter += 1
                    cache.put(key, value)
                    displaced = live.pop(key, None)
                    live[key] = value
                    if cache.capacity == 0:
                        del live[key]
                    elif displaced is not None:
                        pass  # replacement: displaced went to on_evict
                    while len(live) > cache.capacity:
                        oldest = next(iter(live))
                        del live[oldest]
                elif operation < 0.8:
                    key = rng.choice(KEYS)
                    value = cache.get(key)
                    if key in live:
                        assert value == live[key]
                        live[key] = live.pop(key)  # refresh recency in model
                    else:
                        assert value is None
                elif operation < 0.95:
                    capacity = rng.randint(0, 5)
                    cache.resize(capacity)
                    while len(live) > capacity:
                        oldest = next(iter(live))
                        del live[oldest]
                else:
                    cache.clear()
                    live.clear()
                _check_invariants(cache, tracker, live)

    def test_model_agreement_on_eviction_order(self):
        """The cache evicts exactly the model's LRU victim, every time."""
        for seed in range(10):
            rng = random.Random(1_000 + seed)
            tracker = _Tracker()
            cache: LRUCache = LRUCache(3, on_evict=tracker)
            model: dict = {}
            for step in range(200):
                key = rng.choice(KEYS)
                if rng.random() < 0.5:
                    cache.put(key, step)
                    if key in model:
                        del model[key]  # replacement evicts the old value
                    model[key] = step
                    if len(model) > 3:
                        victim = next(iter(model))
                        del model[victim]
                        assert tracker.evicted[-1][0] == victim
                else:
                    expected = model.get(key)
                    assert cache.get(key) == expected
                    if key in model:
                        model[key] = model.pop(key)
            assert list(cache) == list(model)  # same content, same LRU order

    def test_capacity_zero_accounts_every_put(self):
        tracker = _Tracker()
        cache: LRUCache = LRUCache(0, on_evict=tracker)
        for index in range(50):
            cache.put(index % 3, index)
        assert len(cache) == 0
        assert cache.stats().evictions == 50
        assert len(tracker.evicted) == 50


class TestHistogramProperties:
    def test_bucketing_brackets_every_value(self):
        rng = random.Random(7)
        for smallest, growth in ((1e-5, 1.2), (1.0, 1.5), (1e-3, 1.07)):
            histogram = Histogram(smallest=smallest, growth=growth)
            values = [smallest * growth ** (rng.random() * 60) for _ in range(500)]
            values += [histogram._bucket_upper(k) for k in range(60)]
            for value in values:
                index = histogram._bucket(value)
                assert value <= histogram._bucket_upper(index)
                assert index == 0 or value > histogram._bucket_upper(index - 1)

    def test_quantiles_are_monotone_and_bounded(self):
        rng = random.Random(11)
        histogram = Histogram()
        values = [rng.expovariate(20.0) + 1e-6 for _ in range(400)]
        for value in values:
            histogram.record(value)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)
        assert all(histogram.min <= q <= histogram.max for q in quantiles)

    def test_quantile_accuracy_within_growth_factor(self):
        """Geometric buckets promise ~growth relative error; hold them to it."""
        rng = random.Random(13)
        histogram = Histogram(smallest=1e-5, growth=1.2)
        values = sorted(rng.uniform(0.001, 1.0) for _ in range(1_000))
        for value in values:
            histogram.record(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = values[int(q * (len(values) - 1))]
            estimate = histogram.quantile(q)
            assert exact <= estimate <= exact * 1.2 * 1.0001
