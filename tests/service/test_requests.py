"""Request model: keys, digests, JSONL parsing."""

from __future__ import annotations

import pytest

from repro.service.requests import (
    DiagnosisRequest,
    request_key,
    syndrome_digest,
    topology_key,
)


class TestKeys:
    def test_topology_key_is_order_insensitive(self):
        assert topology_key("kary_ncube", {"n": 3, "k": 5}) == \
            topology_key("kary_ncube", {"k": 5, "n": 3})

    def test_request_key_separates_generation_parameters(self):
        base = dict(family="hypercube", params={"dimension": 6})
        keys = {
            request_key(DiagnosisRequest.seeded(**base, seed=seed, placement=placement))
            for seed in (0, 1)
            for placement in ("random", "clustered")
        }
        assert len(keys) == 4

    def test_explicit_requests_key_on_content(self):
        first = DiagnosisRequest.from_syndrome("hypercube", {"dimension": 5}, b"\x00\x01")
        same = DiagnosisRequest.from_syndrome("hypercube", {"dimension": 5}, b"\x00\x01")
        other = DiagnosisRequest.from_syndrome("hypercube", {"dimension": 5}, b"\x01\x01")
        assert request_key(first) == request_key(same)
        assert request_key(first) != request_key(other)
        assert syndrome_digest(b"\x00\x01") in request_key(first)

    def test_describe_is_stable_and_compact(self):
        request = DiagnosisRequest.seeded("star", {"n": 6}, seed=2)
        assert request.describe() == "star[n=6] random/delta random seed=2"


class TestFromDict:
    def test_minimal_and_full_forms(self):
        minimal = DiagnosisRequest.from_dict({"family": "hypercube"})
        assert minimal.params == ()
        full = DiagnosisRequest.from_dict({
            "family": "hypercube", "params": {"dimension": 7},
            "placement": "clustered", "fault_count": 3,
            "behavior": "mimic", "seed": 9,
        })
        assert full.network_kwargs == {"dimension": 7}
        assert full.fault_count == 3

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            DiagnosisRequest.from_dict({"family": "hypercube", "nonsense": 1})

    def test_missing_family_rejected(self):
        with pytest.raises(ValueError, match="'family'"):
            DiagnosisRequest.from_dict({"seed": 1})

    def test_non_integer_params_rejected(self):
        with pytest.raises(ValueError, match="must be an integer"):
            DiagnosisRequest.from_dict(
                {"family": "hypercube", "params": {"dimension": "7"}}
            )
        with pytest.raises(ValueError, match="must be an integer"):
            DiagnosisRequest.from_dict(
                {"family": "hypercube", "params": {"dimension": True}}
            )
        with pytest.raises(ValueError, match="must be an object"):
            DiagnosisRequest.from_dict({"family": "hypercube", "params": [7]})


class TestTenant:
    def test_default_tenant(self):
        from repro.service.requests import DEFAULT_TENANT

        request = DiagnosisRequest.seeded("hypercube", {"dimension": 6}, seed=0)
        assert request.tenant == DEFAULT_TENANT == "default"

    def test_tenant_excluded_from_request_key(self):
        # Two tenants asking the same question share one content address:
        # coalescing and store dedup cross tenant boundaries by design.
        mine = DiagnosisRequest.seeded(
            "hypercube", {"dimension": 6}, seed=0, tenant="mine"
        )
        yours = DiagnosisRequest.seeded(
            "hypercube", {"dimension": 6}, seed=0, tenant="yours"
        )
        assert request_key(mine) == request_key(yours)

    def test_wire_roundtrip_preserves_tenant(self):
        request = DiagnosisRequest.seeded(
            "hypercube", {"dimension": 6}, seed=3, tenant="acme"
        )
        wire = request.to_wire()
        assert wire["tenant"] == "acme"
        assert DiagnosisRequest.from_dict(wire) == request

    def test_default_tenant_omitted_from_wire(self):
        request = DiagnosisRequest.seeded("hypercube", {"dimension": 6}, seed=3)
        assert "tenant" not in request.to_wire()

    def test_from_dict_default_tenant_applies_only_when_unnamed(self):
        unnamed = DiagnosisRequest.from_dict(
            {"family": "hypercube"}, default_tenant="header"
        )
        assert unnamed.tenant == "header"
        named = DiagnosisRequest.from_dict(
            {"family": "hypercube", "tenant": "body"}, default_tenant="header"
        )
        assert named.tenant == "body"  # the body always wins

    def test_describe_prefixes_non_default_tenant(self):
        request = DiagnosisRequest.seeded(
            "star", {"n": 6}, seed=2, tenant="acme"
        )
        assert request.describe().startswith("[acme] ")

    def test_validation(self):
        from repro.service.requests import validate_tenant

        assert validate_tenant("a.b:c@d-e_f") == "a.b:c@d-e_f"
        with pytest.raises(ValueError, match="non-empty"):
            validate_tenant("")
        with pytest.raises(ValueError, match="non-empty"):
            validate_tenant(7)
        with pytest.raises(ValueError, match="exceeds"):
            validate_tenant("x" * 65)
        with pytest.raises(ValueError, match="forbidden"):
            validate_tenant("no spaces")
        with pytest.raises(ValueError, match="forbidden"):
            validate_tenant('quo"te')
