"""DiagnosisService concurrency: coalescing, batching, dedup, cancellation.

The suite drives the asyncio service from synchronous tests via
``asyncio.run`` (no pytest-asyncio dependency).  Correctness baseline
throughout: :func:`repro.service.executor.run_direct`, the plain pipeline.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    DiagnosisRequest,
    DiagnosisService,
    RejectedError,
    ResultStore,
)
from repro.service.executor import run_direct

Q6 = ("hypercube", {"dimension": 6})
S5 = ("star", {"n": 5})
#: A deterministic Theorem-1-violating instance: 14 faults on the 24-node
#: pancake P_4 leave no certifiable healthy component.
DOOMED = DiagnosisRequest.seeded("pancake", {"n": 4}, fault_count=14, seed=0)


def _request(seed: int = 0, instance=Q6, **kwargs) -> DiagnosisRequest:
    return DiagnosisRequest.seeded(*instance, seed=seed, **kwargs)


def _serve(service: DiagnosisService, *requests):
    async def run():
        async with service:
            return await service.submit_many(list(requests))

    return asyncio.run(run())


class TestCoalescing:
    def test_same_topology_requests_share_one_batch(self):
        service = DiagnosisService()
        responses = _serve(service, *(_request(seed) for seed in range(4)))
        assert [r.source for r in responses] == ["computed"] * 4
        assert {r.batch_size for r in responses} == {4}
        stats = service.stats()
        assert stats["batches"] == 1
        assert stats["coalesced_batches"] == 1
        assert stats["topology_cache"]["misses"] == 1

    def test_distinct_topologies_get_distinct_batches(self):
        service = DiagnosisService()
        responses = _serve(
            service, _request(0, Q6), _request(0, S5), _request(1, Q6), _request(1, S5)
        )
        assert all(r.source == "computed" for r in responses)
        assert service.stats()["batches"] == 2
        assert service.stats()["topology_cache"]["misses"] == 2

    def test_identical_concurrent_requests_compute_once(self):
        service = DiagnosisService()
        responses = _serve(service, _request(7), _request(7), _request(7))
        sources = sorted(r.source for r in responses)
        assert sources == ["coalesced", "coalesced", "computed"]
        assert service.stats()["computed"] == 1
        assert len({r.faulty for r in responses}) == 1

    def test_max_batch_size_caps_batches(self):
        service = DiagnosisService(max_batch_size=2)
        responses = _serve(service, *(_request(seed) for seed in range(4)))
        assert all(r.batch_size <= 2 for r in responses)
        assert service.stats()["batches"] == 2

    def test_naive_mode_serves_one_at_a_time(self):
        service = DiagnosisService(coalesce=False, topology_cache_capacity=0)
        responses = _serve(service, _request(0), _request(1), _request(0))
        assert all(r.source == "computed" for r in responses)
        assert all(r.batch_size == 1 for r in responses)
        stats = service.stats()
        assert stats["batches"] == 3
        assert stats["coalesced_batches"] == 0
        # capacity 0: every batch re-resolved its topology
        assert stats["topology_cache"]["misses"] == 3


class TestCorrectness:
    def test_responses_match_direct_pipeline(self):
        service = DiagnosisService()
        requests = [_request(seed) for seed in range(3)] + [_request(1, S5)]
        responses = _serve(service, *requests)
        for request, response in zip(requests, responses):
            direct = run_direct(request)
            assert response.faulty == direct.faulty
            assert response.healthy_root == direct.healthy_root
            assert response.lookups == direct.lookups
            assert response.syndrome_digest == direct.syndrome_digest

    def test_explicit_syndrome_requests(self, q5):
        from repro.backend.array_syndrome import ArraySyndrome
        from repro.backend.csr import compile_network
        from repro.core.faults import random_faults

        faults = random_faults(q5, 3, seed=9)
        syndrome = ArraySyndrome.from_faults(compile_network(q5), faults, seed=9)
        request = DiagnosisRequest.from_syndrome(
            "hypercube", {"dimension": 5}, syndrome
        )
        [response] = _serve(DiagnosisService(), request)
        assert response.faulty_set == faults

    def test_one_bad_request_never_fails_its_batch_mates(self):
        """Batches share execution, not fate (per-request error isolation)."""
        service = DiagnosisService()
        oversized = _request(0, fault_count=10_000)  # > num_nodes: ValueError
        healthy = _request(1)
        bad, good = _serve(service, oversized, healthy)
        assert not bad.ok and "ValueError" in bad.error
        assert good.ok
        assert good.faulty == run_direct(healthy).faulty
        # The direct pipeline agrees on the failure, too.
        assert run_direct(oversized).error == bad.error

    def test_diagnosis_error_becomes_error_response(self):
        service = DiagnosisService()
        ok_request = _request(0)
        responses = _serve(service, DOOMED, ok_request)
        assert not responses[0].ok
        assert "DiagnosisError" in responses[0].error
        assert responses[0].faulty == ()
        assert responses[1].ok  # the failure never poisons other requests
        direct = run_direct(DOOMED)
        assert responses[0].error == direct.error

    def test_in_process_batches_never_recompile(self):
        service = DiagnosisService()
        _serve(service, *(_request(seed) for seed in range(5)))
        stats = service.stats()
        assert stats["worker_compiles"] == 0
        # resolve_topology warms the pair index into the cache entry, so
        # even the *first* batch on a fresh topology builds no pair arrays
        # inside the measured window.
        assert stats["worker_pair_builds"] == 0

    def test_batch_size_histogram_records_kernel_width(self):
        """A construction failure shrinks the stacked kernel's width; the
        batch-size histogram records the post-slicing kernel width, not the
        coalesced request count."""
        service = DiagnosisService()
        oversized = _request(0, fault_count=10_000)  # ValueError pre-kernel
        responses = _serve(service, oversized, _request(1), _request(2))
        assert not responses[0].ok and responses[1].ok and responses[2].ok
        stats = service.stats()
        assert stats["batches"] == 1
        assert stats["batch_size"]["count"] == 1
        assert stats["mean_batch_size"] == 2.0  # 3 coalesced, 2 diagnosed
        # coalescing telemetry still counts the full batch
        assert stats["coalesced_batches"] == 1


class TestStoreIntegration:
    def test_repeat_requests_hit_the_store(self):
        store = ResultStore()
        service = DiagnosisService(store=store)

        async def run():
            async with service:
                first = await service.submit(_request(3))
                second = await service.submit(_request(3))
                return first, second

        first, second = asyncio.run(run())
        assert first.source == "computed"
        assert second.source == "store"
        assert second.faulty == first.faulty
        assert service.stats()["store_hits"] == 1
        assert store.hits == 1

    def test_store_survives_service_restart(self, tmp_path):
        path = tmp_path / "results.db"
        first = _serve(DiagnosisService(store=ResultStore(path)), _request(5))[0]
        again = _serve(DiagnosisService(store=ResultStore(path)), _request(5))[0]
        assert again.source == "store"
        assert again.faulty == first.faulty

    def test_failed_diagnoses_are_stored_too(self):
        store = ResultStore()
        first = _serve(DiagnosisService(store=store), DOOMED)[0]
        again = _serve(DiagnosisService(store=store), DOOMED)[0]
        assert not first.ok and not again.ok
        assert again.source == "store"


class TestAdmissionControl:
    def test_overflow_requests_are_shed_deterministically(self):
        service = DiagnosisService(max_queue_depth=2, batch_delay=0.05)

        async def run():
            async with service:
                outcomes = await asyncio.gather(
                    *(service.submit(_request(seed)) for seed in range(5)),
                    return_exceptions=True,
                )
            return outcomes

        outcomes = asyncio.run(run())
        # gather submits in order within one tick: the first two take the
        # queue's slots, the remaining three shed — same split every run.
        assert [isinstance(o, RejectedError) for o in outcomes] == [
            False, False, True, True, True
        ]
        assert all(o.ok for o in outcomes[:2])
        stats = service.stats()
        assert stats["rejected"] == 3
        assert stats["requests"] == 5
        assert stats["computed"] == 2

    def test_rejection_carries_depth_and_limit(self):
        service = DiagnosisService(max_queue_depth=1, batch_delay=0.05)

        async def run():
            async with service:
                first = asyncio.create_task(service.submit(_request(0)))
                await asyncio.sleep(0)
                with pytest.raises(RejectedError) as excinfo:
                    await service.submit(_request(1))
                await first
                return excinfo.value

        error = asyncio.run(run())
        assert error.depth == 1 and error.limit == 1
        assert "queue full" in str(error)

    def test_store_hits_and_coalesced_joins_are_never_shed(self):
        store = ResultStore()

        async def run():
            async with DiagnosisService(store=store) as warm:
                await warm.submit(_request(0))
            service = DiagnosisService(
                store=store, max_queue_depth=1, batch_delay=0.05
            )
            async with service:
                filler = asyncio.create_task(service.submit(_request(1)))
                await asyncio.sleep(0)  # filler takes the only slot
                duplicate = asyncio.create_task(service.submit(_request(1)))
                await asyncio.sleep(0)
                stored = await service.submit(_request(0))  # store hit
                joined = await duplicate
                await filler
                return stored, joined

        stored, joined = asyncio.run(run())
        assert stored.source == "store"
        assert joined.source == "coalesced"

    def test_queue_drains_and_admits_again(self):
        service = DiagnosisService(max_queue_depth=1, batch_delay=0.01)

        async def run():
            async with service:
                first = await service.submit(_request(0))
                second = await service.submit(_request(1))
            return first, second

        first, second = asyncio.run(run())
        assert first.ok and second.ok  # sequential: never over the bound
        assert service.stats()["rejected"] == 0

    def test_unbounded_by_default(self):
        service = DiagnosisService(batch_delay=0.01)
        responses = _serve(service, *(_request(seed) for seed in range(20)))
        assert all(r.ok for r in responses)
        assert service.stats()["rejected"] == 0

    def test_invalid_max_queue_depth_rejected(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            DiagnosisService(max_queue_depth=0)


class TestTenantAdmission:
    def test_tenant_quota_sheds_deterministically(self):
        service = DiagnosisService(max_queue_per_tenant=2, batch_delay=0.05)

        async def run():
            async with service:
                hot = [_request(seed, tenant="hot") for seed in range(5)]
                cold = [_request(seed, S5, tenant="cold") for seed in range(2)]
                return await asyncio.gather(
                    *(service.submit(r) for r in hot + cold),
                    return_exceptions=True,
                )

        outcomes = asyncio.run(run())
        # Submission order within one tick: hot takes its two quota slots,
        # sheds the rest; cold's quota is untouched by hot's overflow.
        assert [isinstance(o, RejectedError) for o in outcomes] == [
            False, False, True, True, True, False, False
        ]
        stats = service.stats()
        assert stats["tenants"]["hot"]["admitted"] == 2
        assert stats["tenants"]["hot"]["rejected"] == 3
        assert stats["tenants"]["cold"]["admitted"] == 2
        assert stats["tenants"]["cold"]["rejected"] == 0

    def test_tenant_rejection_names_the_tenant(self):
        service = DiagnosisService(max_queue_per_tenant=1, batch_delay=0.05)

        async def run():
            async with service:
                first = asyncio.create_task(
                    service.submit(_request(0, tenant="acme"))
                )
                await asyncio.sleep(0)
                with pytest.raises(RejectedError) as excinfo:
                    await service.submit(_request(1, tenant="acme"))
                await first
                return excinfo.value

        error = asyncio.run(run())
        assert error.scope == "tenant"
        assert error.tenant == "acme"
        assert error.depth == 1 and error.limit == 1
        assert "acme" in str(error) and "max_queue_per_tenant" in str(error)

    def test_global_bound_checked_before_tenant_quota(self):
        service = DiagnosisService(
            max_queue_depth=1, max_queue_per_tenant=5, batch_delay=0.05
        )

        async def run():
            async with service:
                first = asyncio.create_task(
                    service.submit(_request(0, tenant="a"))
                )
                await asyncio.sleep(0)
                with pytest.raises(RejectedError) as excinfo:
                    await service.submit(_request(1, tenant="b"))
                await first
                return excinfo.value

        error = asyncio.run(run())
        assert error.scope == "global"
        assert error.tenant is None

    def test_store_hits_never_consume_tenant_quota(self):
        store = ResultStore()

        async def run():
            async with DiagnosisService(store=store) as warm:
                await warm.submit(_request(0, tenant="hot"))
            service = DiagnosisService(
                store=store, max_queue_per_tenant=1, batch_delay=0.05
            )
            async with service:
                filler = asyncio.create_task(
                    service.submit(_request(1, tenant="hot"))
                )
                await asyncio.sleep(0)  # filler takes hot's only slot
                stored = await service.submit(_request(0, tenant="hot"))
                await filler
            return stored, service.stats()

        stored, stats = asyncio.run(run())
        assert stored.source == "store"
        assert stats["tenants"]["hot"]["rejected"] == 0
        assert stats["tenants"]["hot"]["store_hits"] == 1

    def test_coalesced_joins_never_consume_tenant_quota(self):
        service = DiagnosisService(max_queue_per_tenant=1, batch_delay=0.05)

        async def run():
            async with service:
                filler = asyncio.create_task(
                    service.submit(_request(1, tenant="hot"))
                )
                await asyncio.sleep(0)  # filler takes hot's only slot
                # The identical request joins in flight: no slot consumed,
                # even across a tenant boundary.
                same_tenant = asyncio.create_task(
                    service.submit(_request(1, tenant="hot"))
                )
                cross_tenant = asyncio.create_task(
                    service.submit(_request(1, tenant="other"))
                )
                await asyncio.sleep(0)
                # A *distinct* hot request is over quota and sheds.
                with pytest.raises(RejectedError):
                    await service.submit(_request(2, tenant="hot"))
                return await filler, await same_tenant, await cross_tenant

        filler, same_tenant, cross_tenant = asyncio.run(run())
        assert filler.source == "computed"
        assert same_tenant.source == "coalesced"
        assert cross_tenant.source == "coalesced"
        stats = service.stats()
        assert stats["tenants"]["hot"]["coalesced"] == 1
        assert stats["tenants"]["other"]["coalesced"] == 1
        assert stats["tenants"]["other"]["rejected"] == 0

    def test_stats_expose_tenant_configuration(self):
        service = DiagnosisService(
            max_queue_per_tenant=4, tenant_weights={"hot": 3}
        )
        responses = _serve(service, _request(0, tenant="hot"))
        assert responses[0].ok
        stats = service.stats()
        assert stats["max_queue_per_tenant"] == 4
        assert stats["tenant_weights"] == {"hot": 3}
        assert stats["pending_by_tenant"] == {}  # drained
        assert stats["tenants"]["hot"]["served"] == 1

    def test_weighted_rotation_orders_backlogged_batches(self):
        # Two backlogged tenants, weight 2:1, one batch of width 3 per
        # dispatch: each batch takes two hot slots then one cold slot.
        service = DiagnosisService(
            max_batch_size=3, batch_delay=0.05, tenant_weights={"hot": 2}
        )

        async def run():
            async with service:
                requests = []
                for seed in range(4):
                    requests.append(_request(seed, tenant="hot"))
                    requests.append(_request(10 + seed, tenant="cold"))
                return await asyncio.gather(
                    *(service.submit(r) for r in requests)
                )

        responses = asyncio.run(run())
        assert all(r.ok for r in responses)
        assert all(r.batch_size <= 3 for r in responses)
        # 8 requests in width-3 batches: the rotation fills 3 batches.
        assert service.stats()["batches"] == 3

    def test_invalid_tenant_configuration_rejected(self):
        with pytest.raises(ValueError, match="max_queue_per_tenant"):
            DiagnosisService(max_queue_per_tenant=0)
        with pytest.raises(ValueError, match="weight"):
            DiagnosisService(tenant_weights={"a": 0})


class TestCancellation:
    def test_cancelling_one_client_leaves_the_batch_intact(self):
        service = DiagnosisService(batch_delay=0.05)

        async def run():
            async with service:
                doomed_task = asyncio.create_task(service.submit(_request(0)))
                survivor_task = asyncio.create_task(service.submit(_request(1)))
                await asyncio.sleep(0)  # both enqueue into the open window
                doomed_task.cancel()
                survivor = await survivor_task
                with pytest.raises(asyncio.CancelledError):
                    await doomed_task
                return survivor

        survivor = asyncio.run(run())
        assert survivor.ok
        assert survivor.faulty == run_direct(_request(1)).faulty

    def test_cancelling_a_coalesced_waiter_keeps_the_computation(self):
        service = DiagnosisService(batch_delay=0.05)

        async def run():
            async with service:
                original = asyncio.create_task(service.submit(_request(2)))
                await asyncio.sleep(0)
                duplicate = asyncio.create_task(service.submit(_request(2)))
                await asyncio.sleep(0)
                duplicate.cancel()
                response = await original
                with pytest.raises(asyncio.CancelledError):
                    await duplicate
                return response

        response = asyncio.run(run())
        assert response.ok and response.source == "computed"


class TestLifecycleAndValidation:
    def test_closed_service_refuses(self):
        async def run():
            service = DiagnosisService()
            await service.close()
            with pytest.raises(RuntimeError, match="closed"):
                await service.submit(_request(0))

        asyncio.run(run())

    def test_unknown_family_rejected_before_enqueue(self):
        bad = DiagnosisRequest.seeded("hypercube", {"dimension": 6})
        bad = DiagnosisRequest(family="mesh", params=(("dimension", 6),))
        with pytest.raises(ValueError, match="unknown network family"):
            _serve(DiagnosisService(), bad)

    def test_bad_placement_and_behavior_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            _serve(DiagnosisService(), _request(0, placement="ring"))
        with pytest.raises(ValueError, match="unknown behavior"):
            _serve(DiagnosisService(), _request(0, behavior="chaotic"))
        with pytest.raises(ValueError, match="fault_count"):
            _serve(DiagnosisService(), _request(0, fault_count=0))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DiagnosisService(max_batch_size=0)
        with pytest.raises(ValueError):
            DiagnosisService(batch_delay=-1)

    def test_topology_cache_eviction_under_pressure(self):
        service = DiagnosisService(topology_cache_capacity=1)
        _serve(service, _request(0, Q6), _request(0, S5), _request(1, Q6))
        cache = service.stats()["topology_cache"]
        assert cache["evictions"] >= 1
        assert cache["size"] == 1


class TestPooledService:
    def test_evictions_release_pool_segments(self):
        """A bounded cache must bound /dev/shm too, not just coordinator heap."""
        from repro.parallel import WorkerPool

        topologies = [
            ("hypercube", {"dimension": 5}),
            ("star", {"n": 5}),
            ("pancake", {"n": 5}),
            ("hypercube", {"dimension": 6}),
        ]
        with WorkerPool(max_workers=1) as pool:
            service = DiagnosisService(pool=pool, topology_cache_capacity=1)

            async def run():
                async with service:
                    for instance in topologies:
                        response = await service.submit(_request(0, instance))
                        assert response.ok
                    return len(pool._segments)

            live_segments = asyncio.run(run())
        # One cached topology + nothing retired: evicted segments were
        # unlinked as their batches completed, not pinned until shutdown.
        assert live_segments <= 1
        assert service.stats()["topology_cache"]["evictions"] == len(topologies) - 1

    def test_fork_inherited_topology_adopts_shipped_pair_members(self):
        """Workers that inherited a compiled (but pair-less) CSR graft the
        shared pair members instead of rebuilding them."""
        from repro.backend.csr import compile_network
        from repro.networks.registry import cached_network, clear_network_cache
        from repro.parallel import WorkerPool

        # Compile in the parent via the registry memo, without touching the
        # pair arrays, *before* the pool forks: workers inherit exactly the
        # state that used to defeat the attach guard.  (Clear first so no
        # earlier test's pair-member build rides along on the memo.)
        clear_network_cache()
        csr = compile_network(cached_network("hypercube", dimension=6))
        assert csr._pair_members is None
        with WorkerPool(max_workers=1) as pool:
            pool.submit(pow, 2, 2).result()  # fork now
            service = DiagnosisService(pool=pool)
            responses = _serve(service, _request(0), _request(1))
            stats = service.stats()
        assert all(r.ok for r in responses)
        assert stats["worker_compiles"] == 0
        assert stats["worker_pair_builds"] == 0

    def test_capacity_zero_pooled_service_leaks_no_segments(self):
        """The naive baseline must not pin one shm segment per batch."""
        from repro.parallel import WorkerPool

        with WorkerPool(max_workers=1) as pool:
            service = DiagnosisService(
                pool=pool, coalesce=False, topology_cache_capacity=0
            )

            async def run():
                async with service:
                    for seed in range(4):
                        assert (await service.submit(_request(seed))).ok
                    return len(pool._segments), len(service._topology_locks)

            segments, locks = asyncio.run(run())
        assert segments == 0  # every batch's segment was retired and released
        assert locks == 0

    def test_empty_digest_failures_are_not_stored(self):
        """Pre-syndrome failures have no content address; storing them under
        the empty digest would make unrelated errors collide."""
        store = ResultStore()
        bad_a = DiagnosisRequest.from_syndrome("hypercube", {"dimension": 5}, b"\x00" * 7)
        bad_b = DiagnosisRequest.from_syndrome("hypercube", {"dimension": 5}, b"\x00" * 13)
        first = _serve(DiagnosisService(store=store), bad_a, bad_b)
        again = _serve(DiagnosisService(store=store), bad_a, bad_b)
        assert [r.error for r in again] == [r.error for r in first]
        assert "got 7" in again[0].error and "got 13" in again[1].error
        assert all(r.source != "store" for r in again)
        assert len(store) == 0

    def test_pooled_matches_in_process_with_zero_worker_compiles(self):
        from repro.parallel import WorkerPool

        requests = [_request(seed) for seed in range(3)] + [_request(0, S5)]
        plain = _serve(DiagnosisService(), *requests)
        with WorkerPool(max_workers=2) as pool:
            service = DiagnosisService(pool=pool)
            pooled = _serve(service, *requests)
            stats = service.stats()
        assert [r.faulty for r in pooled] == [r.faulty for r in plain]
        assert [r.lookups for r in pooled] == [r.lookups for r in plain]
        assert stats["worker_compiles"] == 0
        assert stats["worker_pair_builds"] == 0

    def test_pooled_explicit_syndromes_travel_shared_memory(self, q5):
        """Explicit syndrome buffers ship as one published segment with
        (position, offset, size) spans — never pickled per task — and the
        responses stay identical to the direct pipeline."""
        from repro.backend.array_syndrome import ArraySyndrome
        from repro.backend.csr import compile_network
        from repro.core.faults import random_faults
        from repro.parallel import WorkerPool

        csr = compile_network(q5)
        explicit = []
        for seed in (3, 4):
            faults = random_faults(q5, 3, seed=seed)
            syndrome = ArraySyndrome.from_faults(csr, faults, seed=seed)
            explicit.append(
                DiagnosisRequest.from_syndrome(
                    "hypercube", {"dimension": 5}, syndrome
                )
            )
        mixed = [explicit[0], _request(7, ("hypercube", {"dimension": 5})),
                 explicit[1]]
        with WorkerPool(max_workers=1) as pool:
            service = DiagnosisService(pool=pool)
            responses = _serve(service, *mixed)
            stats = service.stats()
            # the per-batch syndrome segment was released as its batch
            # completed and the service close retired the topology segment;
            # a leaked syndrome segment would still be registered here
            segments = len(pool._segments)
        assert segments == 0
        for request, response in zip(mixed, responses):
            direct = run_direct(request)
            assert response.faulty == direct.faulty
            assert response.lookups == direct.lookups
            assert response.syndrome_digest == direct.syndrome_digest
        assert stats["worker_compiles"] == 0
        assert stats["worker_pair_builds"] == 0

    def test_pooled_wrong_size_explicit_buffer_fails_per_item(self):
        """A bad span-shipped buffer raises inside the worker exactly like
        the in-process path — and never fails its batch mates."""
        from repro.parallel import WorkerPool

        bad = DiagnosisRequest.from_syndrome(
            "hypercube", {"dimension": 6}, b"\x01" * 7
        )
        good = _request(1)
        with WorkerPool(max_workers=1) as pool:
            service = DiagnosisService(pool=pool)
            bad_r, good_r = _serve(service, bad, good)
        assert not bad_r.ok and "ValueError" in bad_r.error
        assert "got 7" in bad_r.error
        assert good_r.ok
        assert good_r.faulty == run_direct(good).faulty
        assert bad_r.error == run_direct(bad).error
