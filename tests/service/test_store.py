"""Result store: content addressing, request indexing, persistence."""

from __future__ import annotations

from repro.service.requests import DiagnosisRequest, DiagnosisResponse
from repro.service.store import ResultStore


def _request(seed: int = 0, family: str = "hypercube") -> DiagnosisRequest:
    return DiagnosisRequest.seeded(family, {"dimension": 5}, seed=seed)


def _response(digest: str = "d" * 64, faulty=(3, 9)) -> DiagnosisResponse:
    return DiagnosisResponse(
        topology_key="hypercube[dimension=5]",
        syndrome_digest=digest,
        faulty=tuple(faulty),
        healthy_root=0,
        lookups=42,
        num_probes=2,
        partition_level=0,
    )


class TestRoundtrip:
    def test_put_get(self):
        with ResultStore() as store:
            request = _request()
            assert store.get(request) is None
            store.put(request, _response())
            served = store.get(request)
            assert served is not None
            assert served.faulty == (3, 9)
            assert served.source == "store"
            assert served.lookups == 42
            assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_error_responses_roundtrip(self):
        with ResultStore() as store:
            request = _request()
            failure = DiagnosisResponse(
                topology_key=request.topology_key,
                syndrome_digest="e" * 64,
                faulty=(),
                healthy_root=None,
                lookups=7,
                num_probes=3,
                partition_level=None,
                error="DiagnosisError: no certificate",
            )
            store.put(request, failure)
            served = store.get(request)
            assert not served.ok
            assert served.error == failure.error

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "results.db"
        with ResultStore(path) as store:
            store.put(_request(), _response())
        with ResultStore(path) as reopened:
            assert len(reopened) == 1
            assert reopened.get(_request()).faulty == (3, 9)


class TestDedup:
    def test_identical_content_stored_once(self):
        with ResultStore() as store:
            # Two distinct request keys whose syndromes hash identically
            # (e.g. different placements producing the same fault set).
            store.put(_request(seed=1), _response())
            store.put(_request(seed=2), _response())
            assert len(store) == 1
            assert store.request_count() == 2
            assert store.dedup_writes == 1
            assert store.get(_request(seed=2)).faulty == (3, 9)

    def test_get_by_digest(self):
        with ResultStore() as store:
            store.put(_request(), _response(digest="a" * 64))
            assert store.get_by_digest("hypercube[dimension=5]", "a" * 64) is not None
            assert store.get_by_digest("hypercube[dimension=5]", "b" * 64) is None

    def test_put_many_is_one_visible_batch(self):
        with ResultStore() as store:
            store.put_many([
                (_request(seed=1), _response(digest="a" * 64, faulty=(1,))),
                (_request(seed=2), _response(digest="b" * 64, faulty=(2,))),
            ])
            assert len(store) == 2
            assert store.writes == 2
            assert store.get(_request(seed=1)).faulty == (1,)
            assert store.get(_request(seed=2)).faulty == (2,)

    def test_stats_shape(self):
        with ResultStore() as store:
            store.put(_request(), _response())
            stats = store.stats()
            assert stats["results"] == 1
            assert stats["request_keys"] == 1
            assert stats["writes"] == 1
