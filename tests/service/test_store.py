"""Result store: content addressing, request indexing, persistence, eviction."""

from __future__ import annotations

import pytest

from repro.service.requests import DiagnosisRequest, DiagnosisResponse
from repro.service.store import ResultStore


class FakeClock:
    """Deterministic injectable time source for eviction tests."""

    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _request(seed: int = 0, family: str = "hypercube") -> DiagnosisRequest:
    return DiagnosisRequest.seeded(family, {"dimension": 5}, seed=seed)


def _response(digest: str = "d" * 64, faulty=(3, 9)) -> DiagnosisResponse:
    return DiagnosisResponse(
        topology_key="hypercube[dimension=5]",
        syndrome_digest=digest,
        faulty=tuple(faulty),
        healthy_root=0,
        lookups=42,
        num_probes=2,
        partition_level=0,
    )


class TestRoundtrip:
    def test_put_get(self):
        with ResultStore() as store:
            request = _request()
            assert store.get(request) is None
            store.put(request, _response())
            served = store.get(request)
            assert served is not None
            assert served.faulty == (3, 9)
            assert served.source == "store"
            assert served.lookups == 42
            assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_error_responses_roundtrip(self):
        with ResultStore() as store:
            request = _request()
            failure = DiagnosisResponse(
                topology_key=request.topology_key,
                syndrome_digest="e" * 64,
                faulty=(),
                healthy_root=None,
                lookups=7,
                num_probes=3,
                partition_level=None,
                error="DiagnosisError: no certificate",
            )
            store.put(request, failure)
            served = store.get(request)
            assert not served.ok
            assert served.error == failure.error

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "results.db"
        with ResultStore(path) as store:
            store.put(_request(), _response())
        with ResultStore(path) as reopened:
            assert len(reopened) == 1
            assert reopened.get(_request()).faulty == (3, 9)


class TestDedup:
    def test_identical_content_stored_once(self):
        with ResultStore() as store:
            # Two distinct request keys whose syndromes hash identically
            # (e.g. different placements producing the same fault set).
            store.put(_request(seed=1), _response())
            store.put(_request(seed=2), _response())
            assert len(store) == 1
            assert store.request_count() == 2
            assert store.dedup_writes == 1
            assert store.get(_request(seed=2)).faulty == (3, 9)

    def test_get_by_digest(self):
        with ResultStore() as store:
            store.put(_request(), _response(digest="a" * 64))
            assert store.get_by_digest("hypercube[dimension=5]", "a" * 64) is not None
            assert store.get_by_digest("hypercube[dimension=5]", "b" * 64) is None

    def test_put_many_is_one_visible_batch(self):
        with ResultStore() as store:
            store.put_many([
                (_request(seed=1), _response(digest="a" * 64, faulty=(1,))),
                (_request(seed=2), _response(digest="b" * 64, faulty=(2,))),
            ])
            assert len(store) == 2
            assert store.writes == 2
            assert store.get(_request(seed=1)).faulty == (1,)
            assert store.get(_request(seed=2)).faulty == (2,)

    def test_stats_shape(self):
        with ResultStore() as store:
            store.put(_request(), _response())
            stats = store.stats()
            assert stats["results"] == 1
            assert stats["request_keys"] == 1
            assert stats["writes"] == 1
            assert stats["ttl_seconds"] is None
            assert stats["max_rows"] is None
            assert stats["expired_evictions"] == 0
            assert stats["lru_evictions"] == 0


class TestEviction:
    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError, match="ttl_seconds"):
            ResultStore(ttl_seconds=0)
        with pytest.raises(ValueError, match="max_rows"):
            ResultStore(max_rows=0)

    def test_row_bound_evicts_least_recently_used(self):
        clock = FakeClock()
        with ResultStore(max_rows=3, clock=clock) as store:
            for seed, digest in enumerate("abcd"):
                clock.advance(1)
                store.put(_request(seed), _response(digest=digest * 64))
            assert len(store) == 3
            assert store.lru_evictions == 1
            # "a" was least recently used: its request now misses.
            assert store.get(_request(0)) is None
            assert store.get(_request(3)) is not None
            # The orphaned index entry went with the row.
            assert store.request_count() == 3

    def test_hits_refresh_last_used(self):
        """LRU means least recently *used*: a read protects a row."""
        clock = FakeClock()
        with ResultStore(max_rows=2, clock=clock) as store:
            store.put(_request(0), _response(digest="a" * 64))
            clock.advance(1)
            store.put(_request(1), _response(digest="b" * 64))
            clock.advance(1)
            assert store.get(_request(0)) is not None  # refresh row "a"
            clock.advance(1)
            store.put(_request(2), _response(digest="c" * 64))
            assert store.get(_request(0)) is not None  # survived: "b" went
            misses_before = store.misses
            assert store.get(_request(1)) is None
            assert store.misses == misses_before + 1

    def test_ttl_sweeps_idle_rows_at_commit_time(self):
        clock = FakeClock()
        with ResultStore(ttl_seconds=10, clock=clock) as store:
            store.put(_request(0), _response(digest="a" * 64))
            clock.advance(5)
            store.put(_request(1), _response(digest="b" * 64))
            clock.advance(8)  # row "a" idle 13 s > TTL; "b" idle 8 s
            store.put(_request(2), _response(digest="c" * 64))
            assert len(store) == 2
            assert store.expired_evictions == 1
            assert store.get(_request(0)) is None
            assert store.get(_request(1)) is not None

    def test_explicit_evict_sweep_commits_and_persists(self, tmp_path):
        path = tmp_path / "results.db"
        clock = FakeClock()
        with ResultStore(path, ttl_seconds=10, clock=clock) as store:
            store.put(_request(0), _response(digest="a" * 64))
            clock.advance(60)
            assert store.evict() == 1
            assert len(store) == 0
        # The direct sweep committed: it survives the close (no rollback).
        with ResultStore(path, clock=clock) as reopened:
            assert len(reopened) == 0

    def test_dedup_rewrite_refreshes_last_used(self):
        """Recomputing a stored result counts as use, not a no-op."""
        clock = FakeClock()
        with ResultStore(max_rows=2, clock=clock) as store:
            store.put(_request(0), _response(digest="a" * 64))
            clock.advance(1)
            store.put(_request(1), _response(digest="b" * 64))
            clock.advance(1)
            store.put(_request(5), _response(digest="a" * 64))  # dedup onto "a"
            clock.advance(1)
            store.put(_request(2), _response(digest="c" * 64))
            assert store.get_by_digest("hypercube[dimension=5]", "a" * 64) is not None
            assert store.get_by_digest("hypercube[dimension=5]", "b" * 64) is None

    def test_restart_enforces_bound_against_inherited_rows(self, tmp_path):
        """The acceptance case: a bound holds across restarts, and unexpired
        repeats still serve from disk."""
        path = tmp_path / "results.db"
        clock = FakeClock()
        with ResultStore(path, clock=clock) as store:  # unbounded writer
            for seed, digest in enumerate("abcdef"):
                clock.advance(1)
                store.put(_request(seed), _response(digest=digest * 64))
            assert len(store) == 6
        with ResultStore(path, max_rows=2, clock=clock) as bounded:
            assert len(bounded) == 2  # enforced at open, before any write
            assert bounded.lru_evictions == 4
            assert bounded.get(_request(5)) is not None  # most recent survived
            assert bounded.get(_request(0)) is None
            clock.advance(1)
            bounded.put(_request(9), _response(digest="f" * 64))
            assert len(bounded) <= 2

    @staticmethod
    def _legacy_database(path) -> None:
        """A pre-eviction schema (no ``last_used``) holding one result."""
        import sqlite3

        conn = sqlite3.connect(path)
        conn.executescript(
            "CREATE TABLE results ("
            " topology_key TEXT NOT NULL, syndrome_digest TEXT NOT NULL,"
            " payload TEXT NOT NULL, PRIMARY KEY (topology_key, syndrome_digest));"
            "CREATE TABLE request_index ("
            " request_key TEXT PRIMARY KEY, topology_key TEXT NOT NULL,"
            " syndrome_digest TEXT NOT NULL);"
        )
        conn.execute(
            "INSERT INTO results VALUES (?, ?, ?)",
            ("hypercube[dimension=5]", "a" * 64, _response(digest="a" * 64).to_payload()),
        )
        conn.commit()
        conn.close()

    def test_migration_adds_last_used_to_old_databases(self, tmp_path):
        path = tmp_path / "old.db"
        self._legacy_database(path)
        with ResultStore(path) as store:
            assert len(store) == 1
            assert store.get_by_digest("hypercube[dimension=5]", "a" * 64) is not None

    def test_migration_treats_inherited_rows_as_fresh_under_ttl(self, tmp_path):
        """Enabling a TTL on an upgraded store must not wipe it at open:
        migrated rows are stamped 'now', not 'idle since the epoch'."""
        path = tmp_path / "old.db"
        self._legacy_database(path)
        clock = FakeClock()
        with ResultStore(path, ttl_seconds=10, clock=clock) as store:
            assert len(store) == 1  # survived the at-open sweep
            clock.advance(60)  # ...but expires once genuinely idle
            assert store.evict() == 1
            assert len(store) == 0

    def test_unbounded_store_hits_do_not_write(self, tmp_path):
        """No eviction policy: a hit is read-only (no per-hit commit stall)."""
        calls = []
        with ResultStore(clock=lambda: calls.append(1) or 1000.0) as store:
            store.put(_request(0), _response())
            writes_before = len(calls)
            assert store.get(_request(0)) is not None
            assert len(calls) == writes_before  # clock untouched: no stamp

    def test_on_disk_store_uses_wal(self, tmp_path):
        with ResultStore(tmp_path / "results.db") as store:
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"
            timeout = store._conn.execute("PRAGMA busy_timeout").fetchone()[0]
            assert timeout == 5000


class TestClockRegression:
    """A backwards wall-clock step must not mass-expire fresh rows.

    Regression: ``last_used`` stamps come from the wall clock.  If the clock
    steps forward (row stamped at t=2000), then corrects back (now=1500), a
    row written moments ago at t=1000 looks 500 s idle and a TTL of 100
    would sweep it — though in real time it is seconds old.  The sweep is
    skipped (and counted) whenever the newest stamp is in now's future.
    """

    def test_backwards_step_skips_the_ttl_sweep(self):
        clock = FakeClock(start=1_000.0)
        with ResultStore(ttl_seconds=100, clock=clock) as store:
            store.put_many([
                (_request(0), _response("a" * 64)),
                (_request(1), _response("b" * 64)),
            ])  # both stamped 1000
            clock.advance(1_000)  # forward-stepped clock
            store.get(_request(1))  # hit refreshes b's stamp to 2000
            clock.now = 1_500.0  # correction: now < newest stamp
            # Without the clamp the sweep would expire row "a"
            # (stamp 1000 < 1500 - 100) though it is minutes old in real time.
            assert store.evict() == 0
            assert len(store) == 2  # both rows survive
            assert store.stats()["clock_skew_skips"] == 1
            assert store.stats()["expired_evictions"] == 0

    def test_sweep_resumes_once_the_clock_catches_up(self):
        clock = FakeClock(start=1_000.0)
        with ResultStore(ttl_seconds=100, clock=clock) as store:
            store.put_many([
                (_request(0), _response("a" * 64)),
                (_request(1), _response("b" * 64)),
            ])
            clock.advance(1_000)
            store.get(_request(1))  # b stamped 2000
            clock.now = 1_500.0
            store.evict()  # skipped (skew)
            clock.now = 2_200.0  # past the newest stamp again
            assert store.evict() == 2  # both now genuinely idle > TTL
            assert len(store) == 0
            assert store.stats()["clock_skew_skips"] == 1

    def test_skew_skip_does_not_disable_the_lru_bound(self):
        clock = FakeClock(start=1_000.0)
        with ResultStore(ttl_seconds=100, max_rows=2, clock=clock) as store:
            store.put_many([
                (_request(0), _response("a" * 64)),
                (_request(1), _response("b" * 64)),
            ])
            clock.advance(2_000)
            store.get(_request(1))  # b stamped 3000
            clock.now = 1_500.0  # skewed: TTL sweep disabled...
            store.put(_request(2), _response("c" * 64))
            # ...but the order-based row bound still holds and picks the
            # oldest stamp ("a" at 1000) as the LRU victim.
            assert len(store) == 2
            assert store.get_by_digest(
                "hypercube[dimension=5]", "a" * 64) is None
            stats = store.stats()
            assert stats["lru_evictions"] == 1
            assert stats["clock_skew_skips"] >= 1

    def test_same_batch_stamps_do_not_count_as_skew(self):
        clock = FakeClock(start=1_000.0)
        with ResultStore(ttl_seconds=100, clock=clock) as store:
            store.put_many([
                (_request(0), _response("a" * 64)),
                (_request(1), _response("b" * 64)),
            ])
            # evict() ran inside put_many with now == the stamps (not <).
            assert store.stats()["clock_skew_skips"] == 0
            clock.advance(200)
            assert store.evict() == 2  # normal forward TTL still works
