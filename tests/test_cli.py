"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_diagnose_defaults(self):
        args = build_parser().parse_args(["diagnose"])
        assert args.family == "hypercube"
        assert args.placement == "random"

    def test_param_parsing_errors_surface(self):
        with pytest.raises(SystemExit):
            main(["diagnose", "--family", "unknown_family"])


class TestCommands:
    def test_diagnose_hypercube(self, capsys):
        code = main(["diagnose", "--family", "hypercube", "--param", "dimension=7",
                     "--faults", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "correct          : True" in out

    def test_diagnose_clustered_star(self, capsys):
        code = main(["diagnose", "--family", "star", "--param", "n=5",
                     "--placement", "clustered", "--behavior", "mimic"])
        assert code == 0
        assert "diagnosed faults" in capsys.readouterr().out

    def test_diagnose_uses_registry_small_defaults(self, capsys):
        code = main(["diagnose", "--family", "pancake", "--faults", "2"])
        assert code == 0

    def test_distributed_baseline(self, capsys):
        code = main(["distributed", "--family", "hypercube", "--param", "dimension=6",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "false positives  : []" in out
        assert "gossip" in out

    def test_distributed_lossy_multiroot_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.log"
        code = main(["distributed", "--family", "hypercube", "--param", "dimension=6",
                     "--loss-rate", "0.1", "--roots", "2", "--seed", "4",
                     "--latency", "uniform:1:2", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "drops" in out
        text = trace.read_text()
        assert text.splitlines()[-1].startswith("STATS ")

        from repro.distributed import replay_stats

        assert replay_stats(text).messages > 0

    def test_distributed_rejects_zero_roots(self):
        with pytest.raises(SystemExit, match="at least one root"):
            main(["distributed", "--family", "hypercube", "--param", "dimension=5",
                  "--roots", "0"])

    def test_properties_command(self, capsys):
        code = main(["properties", "--family", "hypercube", "--param", "dimension=6",
                     "--exact-connectivity"])
        out = capsys.readouterr().out
        assert code == 0
        assert "full syndrome table size" in out

    def test_survey_command(self, capsys):
        code = main(["survey", "--size", "small", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Survey" in out
        assert out.count("yes") >= 14


class TestShardedDiagnose:
    def test_sharded_in_process(self, capsys):
        code = main(["diagnose", "--family", "hypercube", "--param", "dimension=7",
                     "--shards", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharding" in out and "3 shards" in out and "in-process" in out

    def test_sharded_pooled(self, capsys):
        code = main(["diagnose", "--family", "hypercube", "--param", "dimension=7",
                     "--shards", "2", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2-process shared-memory pool" in out

    def test_workers_without_shards_rejected_before_any_work(self):
        with pytest.raises(SystemExit, match="--workers requires --shards"):
            main(["diagnose", "--family", "hypercube", "--workers", "2"])

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(SystemExit, match="at least 1"):
            main(["diagnose", "--family", "hypercube", "--shards", "0"])
        with pytest.raises(SystemExit, match="at least 1"):
            main(["diagnose", "--family", "hypercube", "--shards", "2",
                  "--workers", "0"])

    def test_shards_need_compiled_array_backend(self):
        with pytest.raises(SystemExit, match="compiled backend"):
            main(["diagnose", "--family", "hypercube", "--shards", "2",
                  "--uncompiled"])
        with pytest.raises(SystemExit, match="compiled backend"):
            main(["diagnose", "--family", "hypercube", "--shards", "2",
                  "--syndrome", "table"])
