"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_diagnose_defaults(self):
        args = build_parser().parse_args(["diagnose"])
        assert args.family == "hypercube"
        assert args.placement == "random"

    def test_param_parsing_errors_surface(self):
        with pytest.raises(SystemExit):
            main(["diagnose", "--family", "unknown_family"])


class TestCommands:
    def test_diagnose_hypercube(self, capsys):
        code = main(["diagnose", "--family", "hypercube", "--param", "dimension=7",
                     "--faults", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "correct          : True" in out

    def test_diagnose_clustered_star(self, capsys):
        code = main(["diagnose", "--family", "star", "--param", "n=5",
                     "--placement", "clustered", "--behavior", "mimic"])
        assert code == 0
        assert "diagnosed faults" in capsys.readouterr().out

    def test_diagnose_uses_registry_small_defaults(self, capsys):
        code = main(["diagnose", "--family", "pancake", "--faults", "2"])
        assert code == 0

    def test_distributed_baseline(self, capsys):
        code = main(["distributed", "--family", "hypercube", "--param", "dimension=6",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "false positives  : []" in out
        assert "gossip" in out

    def test_distributed_lossy_multiroot_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.log"
        code = main(["distributed", "--family", "hypercube", "--param", "dimension=6",
                     "--loss-rate", "0.1", "--roots", "2", "--seed", "4",
                     "--latency", "uniform:1:2", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "drops" in out
        text = trace.read_text()
        assert text.splitlines()[-1].startswith("STATS ")

        from repro.distributed import replay_stats

        assert replay_stats(text).messages > 0

    def test_distributed_rejects_zero_roots(self):
        with pytest.raises(SystemExit, match="at least one root"):
            main(["distributed", "--family", "hypercube", "--param", "dimension=5",
                  "--roots", "0"])

    def test_properties_command(self, capsys):
        code = main(["properties", "--family", "hypercube", "--param", "dimension=6",
                     "--exact-connectivity"])
        out = capsys.readouterr().out
        assert code == 0
        assert "full syndrome table size" in out

    def test_survey_command(self, capsys):
        code = main(["survey", "--size", "small", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Survey" in out
        assert out.count("yes") >= 14


class TestServeCommand:
    def test_demo_mix_serves_and_prints_stats(self, capsys):
        code = main(["serve", "--demo-requests", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "served 6 requests" in out
        assert "worker compiles: 0" in out

    def test_requests_file_with_store_and_stats_json(self, capsys, tmp_path):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"family": "hypercube", "params": {"dimension": 6}, "seed": 1}\n'
            "# a comment and a blank line are skipped\n\n"
            '{"family": "hypercube", "params": {"dimension": 6}, "seed": 1}\n'
        )
        store = tmp_path / "results.db"
        stats_path = tmp_path / "stats.json"
        code = main(["serve", "--requests", str(requests), "--store", str(store),
                     "--stats-json", str(stats_path)])
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert stats["requests"] == 2
        # Second run: everything comes from the persistent store.
        code = main(["serve", "--requests", str(requests), "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 from store" in out

    def test_malformed_request_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"family": "hypercube", "nonsense": 1}\n')
        with pytest.raises(SystemExit, match="unknown request fields"):
            main(["serve", "--requests", str(bad)])
        bad.write_text('{"family": "mesh"}\n')
        with pytest.raises(SystemExit, match="unknown network family"):
            main(["serve", "--requests", str(bad)])
        bad.write_text('{"family": "hypercube", "params": {"dimension": "7"}}\n')
        with pytest.raises(SystemExit, match="must be an integer"):
            main(["serve", "--requests", str(bad)])
        # A wrong param *name* only surfaces when the constructor runs; it
        # must still exit cleanly, not with a raw traceback.
        bad.write_text('{"family": "hypercube", "params": {"dim": 7}}\n')
        with pytest.raises(SystemExit, match="request failed"):
            main(["serve", "--requests", str(bad)])
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(SystemExit, match="no requests"):
            main(["serve", "--requests", str(empty)])
        with pytest.raises(SystemExit, match="cannot read"):
            main(["serve", "--requests", str(tmp_path / "absent.jsonl")])

    def test_argument_validation(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--workers", "0"])
        with pytest.raises(SystemExit, match="--cache-capacity"):
            main(["serve", "--cache-capacity", "-1"])
        with pytest.raises(SystemExit, match="--max-batch"):
            main(["serve", "--max-batch", "0"])
        with pytest.raises(SystemExit, match="--batch-delay-ms"):
            main(["serve", "--batch-delay-ms", "-2"])
        with pytest.raises(SystemExit, match="--demo-requests"):
            main(["serve", "--demo-requests", "0"])
        with pytest.raises(SystemExit, match="--max-queue"):
            main(["serve", "--max-queue", "0"])
        with pytest.raises(SystemExit, match="--store-ttl"):
            main(["serve", "--store", "x.db", "--store-ttl", "0"])
        with pytest.raises(SystemExit, match="--store-max-rows"):
            main(["serve", "--store", "x.db", "--store-max-rows", "0"])
        with pytest.raises(SystemExit, match="need --store"):
            main(["serve", "--store-ttl", "60"])
        with pytest.raises(SystemExit, match="need --store"):
            main(["serve", "--store-max-rows", "10"])
        with pytest.raises(SystemExit, match="0..65535"):
            main(["serve", "--http", "70000"])
        with pytest.raises(SystemExit, match="drop --requests"):
            main(["serve", "--http", "0", "--requests", "x.jsonl"])
        with pytest.raises(SystemExit, match="--ready-file"):
            main(["serve", "--ready-file", "/tmp/ready.json"])

    def test_stream_overflowing_its_own_max_queue_exits_cleanly(self):
        with pytest.raises(SystemExit, match="raise --max-queue"):
            main(["serve", "--demo-requests", "8", "--max-queue", "1",
                  "--batch-delay-ms", "50"])

    def test_store_bounds_apply_to_stream_serving(self, capsys, tmp_path):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                json.dumps({"family": "hypercube",
                            "params": {"dimension": 6}, "seed": seed})
                for seed in range(5)
            )
        )
        store = tmp_path / "results.db"
        code = main(["serve", "--requests", str(requests), "--store", str(store),
                     "--store-max-rows", "2"])
        assert code == 0
        capsys.readouterr()

        from repro.service import ResultStore

        with ResultStore(store) as reopened:
            assert len(reopened) <= 2

    def test_stats_json_write_is_atomic(self, capsys, tmp_path, monkeypatch):
        """A crash mid-dump must never leave truncated JSON behind."""
        import json
        import os

        stats_path = tmp_path / "stats.json"
        stats_path.write_text('{"previous": true}')
        real_replace = os.replace
        calls = []

        def tracking_replace(src, dst):
            calls.append((src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", tracking_replace)
        code = main(["serve", "--demo-requests", "2",
                     "--stats-json", str(stats_path)])
        assert code == 0
        assert json.loads(stats_path.read_text())["requests"] == 2
        # The dump went through a same-directory temp file + rename.
        assert len(calls) == 1
        assert os.path.dirname(calls[0][0]) == str(tmp_path)
        assert calls[0][1] == str(stats_path)
        # No temp litter left behind.
        assert os.listdir(tmp_path) == ["stats.json"]

    def test_interrupted_stats_write_leaves_previous_content(self, tmp_path,
                                                             monkeypatch,
                                                             capsys):
        import json
        import os

        stats_path = tmp_path / "stats.json"
        stats_path.write_text('{"previous": true}')

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename time")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            main(["serve", "--demo-requests", "2",
                  "--stats-json", str(stats_path)])
        monkeypatch.undo()
        assert json.loads(stats_path.read_text()) == {"previous": True}
        assert os.listdir(tmp_path) == ["stats.json"]


class TestLoadCommand:
    def test_compare_reports_speedup_and_verifies(self, capsys):
        code = main(["load", "--clients", "2", "--requests", "3", "--seed-pool", "2",
                     "--instance", "hypercube:dimension=6", "--compare", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "naive:" in out and "batched:" in out
        assert "batched vs naive throughput:" in out
        assert "0 mismatches" in out

    def test_expectations_enforced(self, capsys):
        # Single instance + huge seed pool: coalesced batches guaranteed,
        # store hits impossible.
        code = main(["load", "--clients", "3", "--requests", "2",
                     "--seed-pool", "100000", "--instance", "hypercube:dimension=6",
                     "--expect-coalesced", "1"])
        assert code == 0
        code = main(["load", "--clients", "3", "--requests", "2",
                     "--seed-pool", "100000", "--instance", "hypercube:dimension=6",
                     "--expect-store-hits", "1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_naive_mode(self, capsys):
        code = main(["load", "--clients", "2", "--requests", "2", "--naive",
                     "--instance", "star:n=5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "naive:" in out

    def test_http_load_drives_a_live_server(self, capsys):
        from repro.service import BackgroundHttpServer, DiagnosisService, ResultStore

        with BackgroundHttpServer(
            lambda: DiagnosisService(store=ResultStore())
        ) as server:
            code = main(["load", "--clients", "2", "--requests", "3",
                         "--seed-pool", "2", "--instance", "hypercube:dimension=6",
                         "--http", server.address, "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "http:" in out
        assert "0 mismatches" in out

    def test_http_load_shedding_expectation(self, capsys):
        from repro.service import BackgroundHttpServer, DiagnosisService

        with BackgroundHttpServer(
            lambda: DiagnosisService(max_queue_depth=1, batch_delay=0.05)
        ) as server:
            code = main(["load", "--clients", "4", "--requests", "3",
                         "--instance", "hypercube:dimension=6",
                         "--http", server.address, "--verify",
                         "--expect-rejections", "1"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "rejections" in out

    def test_http_load_unreachable_server_exits_cleanly(self):
        # A port from the ephemeral range with nothing listening.
        with pytest.raises(SystemExit, match="failed"):
            main(["load", "--clients", "1", "--requests", "1",
                  "--http", "http://127.0.0.1:1"])

    def test_argument_validation(self):
        with pytest.raises(SystemExit, match="--clients"):
            main(["load", "--clients", "0"])
        with pytest.raises(SystemExit, match="--requests"):
            main(["load", "--requests", "0"])
        with pytest.raises(SystemExit, match="--seed-pool"):
            main(["load", "--seed-pool", "0"])
        with pytest.raises(SystemExit, match="--workers"):
            main(["load", "--workers", "0"])
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["load", "--naive", "--compare"])
        with pytest.raises(SystemExit, match="drop --workers"):
            main(["load", "--naive", "--workers", "2"])
        with pytest.raises(SystemExit, match="drop --store"):
            main(["load", "--naive", "--store", "x.db"])
        with pytest.raises(SystemExit, match="unknown network family"):
            main(["load", "--instance", "mesh:n=3"])
        with pytest.raises(SystemExit, match="bad instance"):
            main(["load", "--instance", "hypercube:dimension"])
        for flag in (["--naive"], ["--compare"], ["--workers", "2"],
                     ["--store", "x.db"]):
            with pytest.raises(SystemExit, match="drives a remote server"):
                main(["load", "--http", "http://127.0.0.1:1", *flag])
        with pytest.raises(SystemExit, match="needs --http"):
            main(["load", "--expect-rejections", "1"])


class TestServeHttpProcess:
    def test_serve_http_full_lifecycle(self, tmp_path):
        """Real process, real sockets: ready-file handshake, wire load with
        shedding + verification, SIGTERM drain, atomic stats dump."""
        import json
        import os
        import signal
        import subprocess
        import sys
        import time

        ready = tmp_path / "ready.json"
        stats = tmp_path / "stats.json"
        store = tmp_path / "results.db"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--http", "0",
             "--ready-file", str(ready), "--max-queue", "1",
             "--batch-delay-ms", "50", "--store", str(store),
             "--store-max-rows", "4", "--stats-json", str(stats)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert server.poll() is None, server.stdout.read()
                assert time.monotonic() < deadline, "server never became ready"
                time.sleep(0.05)
            port = json.loads(ready.read_text())["port"]
            code = main(["load", "--http", f"http://127.0.0.1:{port}",
                         "--clients", "4", "--requests", "3",
                         "--instance", "hypercube:dimension=6",
                         "--verify", "--expect-rejections", "1"])
            assert code == 0
        finally:
            server.send_signal(signal.SIGTERM)
            output, _ = server.communicate(timeout=30)
        assert server.returncode == 0, output
        assert "draining" in output
        dumped = json.loads(stats.read_text())
        assert dumped["http"]["shed"] >= 1
        assert dumped["rejected"] == dumped["http"]["shed"]
        assert dumped["store"]["results"] <= 4

        from repro.service import ResultStore

        with ResultStore(store) as reopened:
            assert 0 < len(reopened) <= 4


class TestShardedDiagnose:
    def test_sharded_in_process(self, capsys):
        code = main(["diagnose", "--family", "hypercube", "--param", "dimension=7",
                     "--shards", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharding" in out and "3 shards" in out and "in-process" in out

    def test_sharded_pooled(self, capsys):
        code = main(["diagnose", "--family", "hypercube", "--param", "dimension=7",
                     "--shards", "2", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2-process shared-memory pool" in out

    def test_workers_without_shards_rejected_before_any_work(self):
        with pytest.raises(SystemExit, match="--workers requires --shards"):
            main(["diagnose", "--family", "hypercube", "--workers", "2"])

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(SystemExit, match="at least 1"):
            main(["diagnose", "--family", "hypercube", "--shards", "0"])
        with pytest.raises(SystemExit, match="at least 1"):
            main(["diagnose", "--family", "hypercube", "--shards", "2",
                  "--workers", "0"])

    def test_shards_need_compiled_array_backend(self):
        with pytest.raises(SystemExit, match="compiled backend"):
            main(["diagnose", "--family", "hypercube", "--shards", "2",
                  "--uncompiled"])
        with pytest.raises(SystemExit, match="compiled backend"):
            main(["diagnose", "--family", "hypercube", "--shards", "2",
                  "--syndrome", "table"])


class TestTenantFlags:
    def test_tenant_weight_parsing(self):
        from repro.cli import _parse_tenant_weights

        assert _parse_tenant_weights([]) is None
        assert _parse_tenant_weights(["hot=3"]) == {"hot": 3}
        assert _parse_tenant_weights(["hot=3", "cold=1"]) == {
            "hot": 3, "cold": 1
        }

    def test_tenant_weight_errors(self):
        from repro.cli import _parse_tenant_weights

        with pytest.raises(SystemExit, match="NAME=W"):
            _parse_tenant_weights(["hot"])
        with pytest.raises(SystemExit, match="positive integer"):
            _parse_tenant_weights(["hot=0"])
        with pytest.raises(SystemExit, match="positive integer"):
            _parse_tenant_weights(["hot=x"])
        with pytest.raises(SystemExit, match="twice"):
            _parse_tenant_weights(["hot=1", "hot=2"])
        with pytest.raises(SystemExit, match="forbidden"):
            _parse_tenant_weights(["bad tenant=1"])

    def test_serve_validates_tenant_flags(self):
        with pytest.raises(SystemExit, match="--max-queue-per-tenant"):
            main(["serve", "--max-queue-per-tenant", "0"])
        with pytest.raises(SystemExit, match="NAME=W"):
            main(["serve", "--tenant-weight", "nonsense"])

    def test_serve_demo_accepts_tenant_flags(self, capsys):
        code = main(["serve", "--demo-requests", "4",
                     "--max-queue-per-tenant", "8",
                     "--tenant-weight", "hot=2"])
        assert code == 0
        assert "served" in capsys.readouterr().out

    def test_load_tenant_flag_reaches_the_stream(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        code = main(["load", "--clients", "2", "--requests", "2",
                     "--instance", "hypercube:dimension=6",
                     "--tenant", "acme", "--stats-json", str(stats)])
        assert code == 0
        import json

        payload = json.loads(stats.read_text())
        assert payload["batched"]["stats"]["tenants"]["acme"]["admitted"] == 4

    def test_load_rejects_bad_tenant(self):
        with pytest.raises(SystemExit, match="tenant"):
            main(["load", "--clients", "1", "--requests", "1",
                  "--tenant", "no spaces"])


class TestFairnessCommand:
    _BASE = ["load", "--fairness", "--hot-requests", "8",
             "--cold-tenants", "2", "--cold-requests", "2",
             "--tenant-quota", "2", "--seed-pool", "64",
             "--instance", "hypercube:dimension=6"]

    def test_fairness_run_passes_and_prints_split(self, capsys):
        code = main(list(self._BASE))
        out = capsys.readouterr().out
        assert code == 0, out
        assert "fairness: hot tenant" in out
        assert "completion 100%" in out
        assert "FAIL" not in out

    def test_fairness_stats_json(self, capsys, tmp_path):
        import json

        stats = tmp_path / "fairness.json"
        code = main(list(self._BASE) + ["--stats-json", str(stats)])
        assert code == 0
        payload = json.loads(stats.read_text())
        assert payload["fairness"]["cold_completion"] == 1.0
        assert payload["split"]["hot_served"] + \
            len(payload["split"]["hot_shed_indices"]) == 8
        assert payload["stats"]["tenants"]["hot"]["rejected"] == \
            len(payload["split"]["hot_shed_indices"])

    def test_fairness_conflicts_with_transport_flags(self):
        with pytest.raises(SystemExit, match="drop --http"):
            main(list(self._BASE) + ["--http", ":1"])
        with pytest.raises(SystemExit, match="drop --naive"):
            main(list(self._BASE) + ["--naive"])
        with pytest.raises(SystemExit, match="drop --verify"):
            main(list(self._BASE) + ["--verify"])
        with pytest.raises(SystemExit, match="drop --tenant"):
            main(list(self._BASE) + ["--tenant", "x"])
        with pytest.raises(SystemExit, match="drop --store"):
            main(list(self._BASE) + ["--store", "x.db"])

    def test_fairness_validates_counts(self):
        with pytest.raises(SystemExit, match="--hot-requests"):
            main(["load", "--fairness", "--hot-requests", "0"])
        with pytest.raises(SystemExit, match="--tenant-quota"):
            main(["load", "--fairness", "--tenant-quota", "0"])


class TestAtomicWrites:
    def test_write_text_atomic_replaces_and_leaves_no_temp(self, tmp_path):
        """Regression: ``--trace`` wrote through a bare open(path, 'w'), so a
        crash mid-write could leave a torn trace for ``replay_stats``; text
        artifacts now go through the same temp-file + rename path as JSON."""
        from repro.cli import _write_text_atomic

        target = tmp_path / "trace.log"
        target.write_text("old content")
        _write_text_atomic(str(target), "EVENT a\nSTATS {}\n")
        assert target.read_text() == "EVENT a\nSTATS {}\n"
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert leftovers == [], f"temp files left behind: {leftovers}"

    def test_write_json_atomic_still_round_trips(self, tmp_path):
        import json

        from repro.cli import _write_json_atomic

        target = tmp_path / "stats.json"
        _write_json_atomic(str(target), {"requests": 3, "ok": True})
        assert json.loads(target.read_text()) == {"requests": 3, "ok": True}

    def test_lint_subcommand_forwards_to_analyzer(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RPR005" in out  # the zombie-worker rule is registered
