"""Tests for the experiment runners (the EXPERIMENTS.md regeneration machinery)."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_all, run_experiment
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.runners import run_e1, run_e5, run_e7, run_e8


class TestRunners:
    def test_registry_lists_all_nine(self):
        assert sorted(EXPERIMENTS) == [f"E{i}" for i in range(1, 10)]

    def test_e1_small_scale(self):
        report = run_e1(dimensions=(7, 8))
        assert report.experiment == "E1"
        assert report.claims_verified
        assert len(report.rows) == 2
        assert report.headers[0] == "network"
        assert "n·2^n" in report.notes

    def test_e5_lookup_claims(self):
        report = run_e5()
        assert report.claims_verified
        assert all(row[-1] for row in report.rows)  # "within bound" column

    def test_e7_diagnosability_claims(self):
        report = run_e7(families=("hypercube", "star"))
        assert report.claims_verified
        # The exhaustive Petersen row is appended after the families.
        assert report.rows[-1][0].startswith("petersen")

    def test_e8_certificate_finding(self):
        report = run_e8(dimensions=(7, 8))
        assert report.claims_verified
        for row in report.rows:
            assert row[3] is False  # the paper's class never certifies
            assert row[5] == 1      # one escalation suffices

    def test_run_experiment_by_name_case_insensitive(self):
        report = run_experiment("e8", dimensions=(7,))
        assert report.experiment == "E8"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("E42")


class TestReportFormatting:
    def test_text_rendering(self):
        report = run_e8(dimensions=(7,))
        text = report.to_text()
        assert text.startswith("E8:")
        assert "all claims verified" in text

    def test_markdown_rendering(self):
        report = run_e8(dimensions=(7,))
        md = report.to_markdown()
        lines = md.splitlines()
        assert lines[0].startswith("| network |")
        assert lines[1].startswith("| ---")
        assert len(lines) == 2 + len(report.rows)
        assert "| no |" in lines[2]


class TestMainEntryPoint:
    def test_single_experiment(self, capsys):
        code = experiments_main(["E8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E8:" in out

    def test_markdown_flag(self, capsys):
        code = experiments_main(["E8", "--markdown"])
        out = capsys.readouterr().out
        assert code == 0
        assert "### E8" in out
        assert "| --- |" in out


@pytest.mark.slow
class TestRunAll:
    def test_run_all_reports_every_experiment(self):
        reports = run_all(
            e1={"dimensions": (7, 8)},
            e6={"dimensions": (8,)},
            e8={"dimensions": (7, 8)},
            e9={"dimensions": (8,)},
        )
        assert [r.experiment for r in reports] == sorted(EXPERIMENTS)
        assert all(r.claims_verified for r in reports)
