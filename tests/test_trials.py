"""Tests for the batched TrialPlan experiment machinery."""

from __future__ import annotations

import pytest

from repro.experiments.trials import ALGORITHMS, PLACEMENTS, TrialPlan, TrialSpec
from repro.networks.registry import cached_network


def _hypercube_instances(dims):
    return [(f"Q_{n}", "hypercube", {"dimension": n}) for n in dims]


class TestFactorProduct:
    def test_table_size_is_product_of_factors(self):
        plan = TrialPlan.from_factors(
            _hypercube_instances((7, 8)),
            placements=("random", "clustered"),
            seeds=(0, 1, 2),
        )
        assert len(plan) == 2 * 2 * 3

    def test_row_order_varies_innermost_factor_fastest(self):
        plan = TrialPlan.from_factors(
            _hypercube_instances((7,)),
            placements=("random",),
            algorithms=("stewart", "yang"),
        )
        assert [t.algorithm for t in plan.trials] == ["stewart", "yang"]

    def test_scenario_names_match_sweep_convention(self):
        spec = TrialSpec("Q_7", "hypercube", (("dimension", 7),), placement="clustered")
        assert spec.scenario == "clustered-max"
        spec = TrialSpec("Q_7", "hypercube", (("dimension", 7),), fault_count=3)
        assert spec.scenario == "random-3"

    def test_groups_share_topology(self):
        plan = TrialPlan.from_factors(
            _hypercube_instances((7, 8)), placements=("random", "clustered")
        )
        groups = plan.groups()
        assert len(groups) == 2
        assert all(len(group) == 2 for group in groups)


class TestExecution:
    def test_trials_are_exact_and_ordered(self):
        plan = TrialPlan.from_factors(
            _hypercube_instances((7, 8)), placements=("random", "clustered"), seeds=(3,)
        )
        results = plan.run()
        assert [r.spec for r in results] == plan.trials
        assert all(r.exact for r in results)
        assert all(r.lookups > 0 for r in results)
        assert all(r.num_faults == r.delta for r in results)

    def test_shared_instance_comes_from_registry(self):
        plan = TrialPlan.from_factors(_hypercube_instances((7,)))
        result = plan.run()[0]
        network = cached_network("hypercube", dimension=7)
        assert result.num_nodes == network.num_nodes
        # The registry instance carries the compiled adjacency built by the run.
        assert getattr(network, "_csr_adjacency", None) is not None

    def test_algorithm_factor_runs_baselines(self):
        plan = TrialPlan.from_factors(
            _hypercube_instances((7,)), algorithms=ALGORITHMS
        )
        results = plan.run()
        assert [r.spec.algorithm for r in results] == list(ALGORITHMS)
        assert all(r.exact for r in results)
        stewart, _, extended = results
        assert stewart.lookups * 2 < extended.lookups

    def test_unknown_algorithm_rejected(self):
        plan = TrialPlan([TrialSpec("Q_7", "hypercube", (("dimension", 7),),
                                    algorithm="oracle")])
        with pytest.raises(ValueError, match="unknown algorithm"):
            plan.run()

    def test_fallback_flag_reflects_partition_level(self):
        plan = TrialPlan.from_factors([("A_5,2", "arrangement", {"n": 5, "k": 2})])
        result = plan.run()[0]
        assert result.exact
        # Arrangement graphs lack enough large classes: driver falls back.
        assert result.used_fallback

    @pytest.mark.slow
    def test_parallel_execution_matches_inline(self):
        plan = TrialPlan.from_factors(
            _hypercube_instances((7, 8)), placements=("random", "clustered")
        )
        inline = plan.run()
        parallel = plan.run(parallel=True, max_workers=2)
        assert [(r.spec, r.exact, r.lookups) for r in inline] == \
               [(r.spec, r.exact, r.lookups) for r in parallel]


class TestPlacements:
    def test_every_registered_placement_runs(self):
        plan = TrialPlan.from_factors(
            _hypercube_instances((7,)), placements=tuple(PLACEMENTS)
        )
        results = plan.run()
        assert all(r.exact for r in results)
