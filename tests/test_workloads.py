"""Tests for the workload sweeps used by the benchmark harness."""

from __future__ import annotations

import pytest

from repro.workloads import (
    cube_variant_sweep,
    distributed_sweep,
    hypercube_sweep,
    kary_sweep,
    permutation_sweep,
)
from repro.workloads.sweeps import (
    DISTRIBUTED_LATENCIES,
    DISTRIBUTED_LOSS_RATES,
    DISTRIBUTED_ROOT_COUNTS,
)


class TestSweeps:
    def test_hypercube_sweep_dimensions(self):
        points = hypercube_sweep(dimensions=(7, 8), seed=1)
        assert [p.label for p in points] == ["Q_7", "Q_8"]
        assert [p.num_nodes for p in points] == [128, 256]

    def test_every_point_has_max_size_scenarios(self):
        for point in hypercube_sweep(dimensions=(7,)):
            delta = point.network.diagnosability()
            assert {s.name for s in point.scenarios} == {"random-max", "clustered-max"}
            assert all(s.size == delta for s in point.scenarios)

    def test_cube_variant_sweep_covers_theorem3_families(self):
        families = {p.network.family for p in cube_variant_sweep()}
        assert families == {
            "crossed_cube", "twisted_cube", "folded_hypercube", "enhanced_hypercube",
            "augmented_cube", "shuffle_cube", "twisted_n_cube",
        }

    def test_kary_sweep_covers_theorem4_families(self):
        families = {p.network.family for p in kary_sweep()}
        assert families == {"kary_ncube", "augmented_kary_ncube"}

    def test_permutation_sweep_covers_theorems_5_to_7(self):
        families = {p.network.family for p in permutation_sweep()}
        assert families == {"star", "nk_star", "pancake", "arrangement"}

    def test_scenarios_respect_diagnosability(self):
        for sweep in (cube_variant_sweep, kary_sweep, permutation_sweep):
            for point in sweep():
                delta = point.network.diagnosability()
                for scenario in point.scenarios:
                    assert scenario.size <= delta

    def test_seed_reproducibility(self):
        a = permutation_sweep(seed=3)
        b = permutation_sweep(seed=3)
        for pa, pb in zip(a, b):
            assert [s.faults for s in pa.scenarios] == [s.faults for s in pb.scenarios]


class TestDistributedSweep:
    def test_factor_table_shape(self):
        plan = distributed_sweep(dimensions=(6, 7), seed=2)
        # topology x loss-rate x root-count (default latency list is fixed:1)
        expected = 2 * len(DISTRIBUTED_LOSS_RATES) * len(DISTRIBUTED_ROOT_COUNTS)
        assert len(plan) == expected
        labels = {t.label for t in plan.trials}
        assert labels == {"Q_6", "Q_7"}
        assert {t.seed for t in plan.trials} == {2}

    def test_axes_come_from_the_shared_constants(self):
        plan = distributed_sweep(dimensions=(6,))
        assert {t.loss_rate for t in plan.trials} == set(DISTRIBUTED_LOSS_RATES)
        assert {t.root_count for t in plan.trials} == set(DISTRIBUTED_ROOT_COUNTS)

    def test_axes_are_overridable(self):
        plan = distributed_sweep(
            dimensions=(6,), loss_rates=(0.25,), root_counts=(3,),
            latencies=("uniform:1:2",),
        )
        assert all(t.loss_rate == 0.25 for t in plan.trials)
        assert all(t.root_count == 3 for t in plan.trials)
        assert all(t.latency == "uniform:1:2" for t in plan.trials)

    def test_default_latencies_constant_is_exercised(self):
        assert "fixed:1" in DISTRIBUTED_LATENCIES

    def test_plan_rows_execute_on_the_engine(self):
        plan = distributed_sweep(dimensions=(6,), loss_rates=(0.0,),
                                 root_counts=(1,))
        results = plan.run()
        assert len(results) == len(plan)
        assert all(r.exact for r in results)
        assert all(r.gossip_messages > 0 for r in results)


class TestSweepPointShape:
    def test_num_nodes_property(self):
        point = hypercube_sweep(dimensions=(7,))[0]
        assert point.num_nodes == point.network.num_nodes == 128

    def test_instance_tables_are_registry_backed(self):
        from repro.workloads.sweeps import (
            CUBE_VARIANT_INSTANCES,
            KARY_INSTANCES,
            PERMUTATION_INSTANCES,
        )
        from repro.networks.registry import available_families

        for table in (CUBE_VARIANT_INSTANCES, KARY_INSTANCES, PERMUTATION_INSTANCES):
            for _, family, params in table:
                assert family in available_families()
                assert isinstance(params, dict)
