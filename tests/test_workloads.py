"""Tests for the workload sweeps used by the benchmark harness."""

from __future__ import annotations

import pytest

from repro.workloads import (
    cube_variant_sweep,
    hypercube_sweep,
    kary_sweep,
    permutation_sweep,
)


class TestSweeps:
    def test_hypercube_sweep_dimensions(self):
        points = hypercube_sweep(dimensions=(7, 8), seed=1)
        assert [p.label for p in points] == ["Q_7", "Q_8"]
        assert [p.num_nodes for p in points] == [128, 256]

    def test_every_point_has_max_size_scenarios(self):
        for point in hypercube_sweep(dimensions=(7,)):
            delta = point.network.diagnosability()
            assert {s.name for s in point.scenarios} == {"random-max", "clustered-max"}
            assert all(s.size == delta for s in point.scenarios)

    def test_cube_variant_sweep_covers_theorem3_families(self):
        families = {p.network.family for p in cube_variant_sweep()}
        assert families == {
            "crossed_cube", "twisted_cube", "folded_hypercube", "enhanced_hypercube",
            "augmented_cube", "shuffle_cube", "twisted_n_cube",
        }

    def test_kary_sweep_covers_theorem4_families(self):
        families = {p.network.family for p in kary_sweep()}
        assert families == {"kary_ncube", "augmented_kary_ncube"}

    def test_permutation_sweep_covers_theorems_5_to_7(self):
        families = {p.network.family for p in permutation_sweep()}
        assert families == {"star", "nk_star", "pancake", "arrangement"}

    def test_scenarios_respect_diagnosability(self):
        for sweep in (cube_variant_sweep, kary_sweep, permutation_sweep):
            for point in sweep():
                delta = point.network.diagnosability()
                for scenario in point.scenarios:
                    assert scenario.size <= delta

    def test_seed_reproducibility(self):
        a = permutation_sweep(seed=3)
        b = permutation_sweep(seed=3)
        for pa, pb in zip(a, b):
            assert [s.faults for s in pa.scenarios] == [s.faults for s in pb.scenarios]
